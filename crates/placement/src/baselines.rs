//! Affinity-oblivious placement baselines used as experimental
//! comparators (the strategies a locality-unaware IaaS scheduler would
//! use), plus the random-centre helper behind the paper's Fig. 2.

use crate::distance::cluster_distance;
use crate::policy::{check_admissible, PlacementError, PlacementPolicy};
use rand::Rng;
use vc_model::{Allocation, ClusterState, Request, ResourceMatrix};
use vc_topology::NodeId;

/// Greedily fill nodes in a fixed visiting order; the centre is then the
/// distance-minimising node (so baselines are not penalised by a silly
/// centre — Fig. 2 isolates the centre effect separately).
fn fill_in_order(
    order: &[NodeId],
    request: &Request,
    state: &ClusterState,
) -> Result<Allocation, PlacementError> {
    check_admissible(request, state)?;
    let remaining = state.remaining();
    let mut matrix = ResourceMatrix::zeros(state.num_nodes(), state.num_types());
    let mut outstanding = request.clone();
    for &node in order {
        if outstanding.is_zero() {
            break;
        }
        let take = remaining.row_request(node).com(&outstanding);
        if !take.is_zero() {
            for (ty, count) in take.nonzero() {
                matrix.add(node, ty, count);
            }
            outstanding.checked_sub_assign(&take);
        }
    }
    debug_assert!(outstanding.is_zero(), "admissible request must complete");
    let (_, center) = cluster_distance(&matrix, state.topology());
    Ok(Allocation::new(matrix, center))
}

/// **First-fit**: scan nodes in id order, taking whatever each provides.
/// Models a scheduler that ignores topology entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstFit;

impl PlacementPolicy for FirstFit {
    fn name(&self) -> &'static str {
        "first-fit"
    }

    fn place(
        &self,
        request: &Request,
        state: &ClusterState,
        _rng: &mut dyn rand::RngCore,
    ) -> Result<Allocation, PlacementError> {
        let order: Vec<NodeId> = state.topology().node_ids().collect();
        fill_in_order(&order, request, state)
    }
}

/// **Best-fit (packing)**: visit nodes by how much of the request they can
/// provide, most first — packs the cluster onto few nodes but is blind to
/// which racks those nodes are in.
#[derive(Debug, Clone, Copy, Default)]
pub struct BestFit;

impl PlacementPolicy for BestFit {
    fn name(&self) -> &'static str {
        "best-fit"
    }

    fn place(
        &self,
        request: &Request,
        state: &ClusterState,
        _rng: &mut dyn rand::RngCore,
    ) -> Result<Allocation, PlacementError> {
        let remaining = state.remaining();
        let mut order: Vec<NodeId> = state.topology().node_ids().collect();
        order.sort_by_key(|&n| {
            (
                std::cmp::Reverse(remaining.row_request(n).com(request).total_vms()),
                n,
            )
        });
        fill_in_order(&order, request, state)
    }
}

/// **Spread (striping)**: interleave nodes across racks (rack 0 node 0,
/// rack 1 node 0, …) — the load-balancing pattern that maximises failure
/// independence and, incidentally, cluster distance.
#[derive(Debug, Clone, Copy, Default)]
pub struct Spread;

impl PlacementPolicy for Spread {
    fn name(&self) -> &'static str {
        "spread"
    }

    fn place(
        &self,
        request: &Request,
        state: &ClusterState,
        _rng: &mut dyn rand::RngCore,
    ) -> Result<Allocation, PlacementError> {
        let topo = state.topology();
        let max_rack = topo
            .racks()
            .iter()
            .map(|r| r.nodes.len())
            .max()
            .unwrap_or(0);
        let mut order = Vec::with_capacity(topo.num_nodes());
        for slot in 0..max_rack {
            for rack in topo.racks() {
                if let Some(&node) = rack.nodes.get(slot) {
                    order.push(node);
                }
            }
        }
        // Spread VM-by-VM: cycle the striped order taking one VM of one
        // outstanding type per visit.
        check_admissible(request, state)?;
        let remaining = state.remaining();
        let mut matrix = ResourceMatrix::zeros(state.num_nodes(), state.num_types());
        let mut outstanding = request.clone();
        while !outstanding.is_zero() {
            let mut progressed = false;
            for &node in &order {
                if outstanding.is_zero() {
                    break;
                }
                // take a single VM of the first outstanding type this node can host
                let avail = remaining.row_request(node);
                for (ty, _) in outstanding.clone().nonzero() {
                    if matrix.get(node, ty) < avail.get(ty) {
                        matrix.add(node, ty, 1);
                        outstanding.set(ty, outstanding.get(ty) - 1);
                        progressed = true;
                        break;
                    }
                }
            }
            debug_assert!(progressed, "admissible request must progress");
            if !progressed {
                break;
            }
        }
        let (_, center) = cluster_distance(&matrix, topo);
        Ok(Allocation::new(matrix, center))
    }
}

/// **Random**: place VMs one at a time on uniformly random feasible nodes.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomPlacement;

impl PlacementPolicy for RandomPlacement {
    fn name(&self) -> &'static str {
        "random"
    }

    fn place(
        &self,
        request: &Request,
        state: &ClusterState,
        rng: &mut dyn rand::RngCore,
    ) -> Result<Allocation, PlacementError> {
        check_admissible(request, state)?;
        let remaining = state.remaining();
        let mut matrix = ResourceMatrix::zeros(state.num_nodes(), state.num_types());
        let mut outstanding = request.clone();
        while !outstanding.is_zero() {
            // All (node, type) cells that can still host an outstanding VM.
            let mut cells: Vec<(NodeId, vc_model::VmTypeId)> = Vec::new();
            for node in state.topology().node_ids() {
                for (ty, _) in outstanding.nonzero() {
                    if matrix.get(node, ty) < remaining.get(node, ty) {
                        cells.push((node, ty));
                    }
                }
            }
            debug_assert!(
                !cells.is_empty(),
                "admissible request must have a feasible cell"
            );
            let (node, ty) = cells[rng.gen_range(0..cells.len())];
            matrix.add(node, ty, 1);
            outstanding.set(ty, outstanding.get(ty) - 1);
        }
        let (_, center) = cluster_distance(&matrix, state.topology());
        Ok(Allocation::new(matrix, center))
    }
}

/// Pick a central node uniformly at random among the allocation's
/// *occupied* nodes — the strawman of Fig. 2 ("shortest distance with a
/// random central node").
///
/// Returns the allocation's existing centre when it hosts no VMs at all.
pub fn random_center(allocation: &Allocation, rng: &mut dyn rand::RngCore) -> NodeId {
    let occupied = allocation.matrix().occupied_nodes();
    if occupied.is_empty() {
        allocation.center()
    } else {
        occupied[rng.gen_range(0..occupied.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::distance_with_center;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;
    use vc_model::VmCatalog;
    use vc_topology::{generate, DistanceTiers};

    fn state() -> ClusterState {
        let topo = Arc::new(generate::uniform(3, 3, DistanceTiers::paper_experiment()));
        let cat = Arc::new(VmCatalog::ec2_table1());
        ClusterState::uniform_capacity(topo, cat, 2)
    }

    fn policies() -> Vec<Box<dyn PlacementPolicy>> {
        vec![
            Box::new(FirstFit),
            Box::new(BestFit),
            Box::new(Spread),
            Box::new(RandomPlacement),
        ]
    }

    #[test]
    fn all_baselines_satisfy_and_fit() {
        let s = state();
        let req = Request::from_counts(vec![3, 2, 1]);
        let mut rng = StdRng::seed_from_u64(11);
        for p in policies() {
            let a = p
                .place(&req, &s, &mut rng)
                .unwrap_or_else(|e| panic!("{}: {e}", p.name()));
            assert!(a.satisfies(&req), "{} does not satisfy", p.name());
            assert!(a.matrix().le(s.remaining()), "{} over-commits", p.name());
        }
    }

    #[test]
    fn spread_uses_many_racks() {
        let s = state();
        let req = Request::from_counts(vec![6, 0, 0]);
        let mut rng = StdRng::seed_from_u64(1);
        let spread = Spread.place(&req, &s, &mut rng).unwrap();
        assert_eq!(
            spread.rack_span(s.topology()),
            3,
            "striping should hit all racks"
        );
        let packed = BestFit.place(&req, &s, &mut rng).unwrap();
        assert!(packed.rack_span(s.topology()) <= spread.rack_span(s.topology()));
    }

    #[test]
    fn online_beats_or_ties_baselines_on_average() {
        let s = state();
        let mut rng = StdRng::seed_from_u64(5);
        let profile = vc_model::workload::RequestProfile::standard();
        let mut online_total = 0u64;
        let mut spread_total = 0u64;
        for _ in 0..20 {
            let req = profile.sample(3, &mut rng);
            if !s.can_satisfy(&req) {
                continue;
            }
            let o = crate::online::place(&req, &s).unwrap();
            let b = Spread.place(&req, &s, &mut rng).unwrap();
            online_total += distance_with_center(o.matrix(), s.topology(), o.center());
            spread_total += distance_with_center(b.matrix(), s.topology(), b.center());
        }
        assert!(
            online_total <= spread_total,
            "online {online_total} should not exceed spread {spread_total}"
        );
    }

    #[test]
    fn random_center_is_occupied() {
        let s = state();
        let req = Request::from_counts(vec![2, 2, 0]);
        let mut rng = StdRng::seed_from_u64(3);
        let a = FirstFit.place(&req, &s, &mut rng).unwrap();
        for _ in 0..10 {
            let c = random_center(&a, &mut rng);
            assert!(a.matrix().occupied_nodes().contains(&c));
        }
    }

    #[test]
    fn random_placement_deterministic_per_seed() {
        let s = state();
        let req = Request::from_counts(vec![2, 1, 1]);
        let a = RandomPlacement
            .place(&req, &s, &mut StdRng::seed_from_u64(9))
            .unwrap();
        let b = RandomPlacement
            .place(&req, &s, &mut StdRng::seed_from_u64(9))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn baseline_names() {
        let names: Vec<_> = policies().iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["first-fit", "best-fit", "spread", "random"]);
    }
}
