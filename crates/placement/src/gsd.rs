//! Exact solver for the **Global Shortest Distance** problem (paper
//! §III-C, Definition 4): provision a whole batch of requests at once,
//! minimising the *sum* of cluster distances.
//!
//! The paper formulates GSD as an integer program but concludes a global
//! optimum is impractical online and falls back to Algorithm 2. This
//! module provides the optimum anyway — for small instances — so the
//! heuristic pipeline can be measured against the true bound:
//!
//! * enumerate every assignment of central nodes `(T_1 … T_p) ∈ N^p`
//!   (the only non-convex part of the formulation);
//! * for fixed centres the problem is a transportation program —
//!   `min Σ_k Σ_ij x^k_ij · D_{i,T_k}` subject to per-request demands
//!   `Σ_i x^k_ij = R^k_j` and shared capacities `Σ_k x^k_ij ≤ L_ij` —
//!   solved exactly with the in-repo MILP solver (`vc-ilp`);
//! * keep the best tuple.
//!
//! Complexity is `O(nᵖ · ILP(p·n·m))`: use only where `nᵖ` is small
//! (tests, ablations); [`work_estimate`] lets callers check first.

// Index-based loops mirror the textbook matrix formulations here.
#![allow(clippy::needless_range_loop)]

use crate::distance::distance_with_center;
use crate::policy::{check_admissible, PlacementError};
use vc_ilp::{Cmp, Problem};
use vc_model::{Allocation, ClusterState, Request, ResourceMatrix, VmTypeId};
use vc_topology::NodeId;

/// The exact GSD optimum: allocations (aligned with `requests`) and the
/// minimal distance sum.
#[derive(Debug, Clone)]
pub struct GsdSolution {
    /// One allocation per request, in input order.
    pub allocations: Vec<Allocation>,
    /// `GSD(R̃) = Σ_k DC(C^k)` at the optimum.
    pub total_distance: u64,
}

/// Number of centre tuples the enumeration would visit: `n^p`.
pub fn work_estimate(num_nodes: usize, num_requests: usize) -> u128 {
    (num_nodes as u128).saturating_pow(num_requests as u32)
}

/// Solve GSD exactly.
///
/// Errors with [`PlacementError::Refused`]/
/// [`PlacementError::Unsatisfiable`] if the batch as a whole exceeds
/// capacity/availability (the paper's Definition 4 presumes "there are
/// enough resources for a request set").
///
/// # Panics
/// Panics if the enumeration would exceed ~10⁵ centre tuples — this
/// solver exists for validation on small instances.
pub fn solve(requests: &[Request], state: &ClusterState) -> Result<GsdSolution, PlacementError> {
    let n = state.num_nodes();
    let m = state.num_types();
    let p = requests.len();
    assert!(
        work_estimate(n, p) <= 100_000,
        "GSD enumeration too large: {n}^{p} centre tuples"
    );
    // Admissibility of the combined batch.
    let mut combined = Request::zeros(m);
    for r in requests {
        if r.num_types() != m {
            return Err(PlacementError::Refused { request: r.clone() });
        }
        combined.checked_add_assign(r);
    }
    check_admissible(&combined, state)?;
    if p == 0 {
        return Ok(GsdSolution {
            allocations: vec![],
            total_distance: 0,
        });
    }

    let remaining = state.remaining();
    let topo = state.topology();
    let mut best: Option<GsdSolution> = None;

    // Odometer over centre tuples.
    let mut centers = vec![0usize; p];
    loop {
        // Solve the fixed-centre transportation program.
        let mut problem = Problem::minimize();
        // vars[k][i][j]
        let mut vars = vec![vec![vec![]; n]; p];
        for (k, req) in requests.iter().enumerate() {
            let center = NodeId::from_index(centers[k]);
            for i in 0..n {
                let node = NodeId::from_index(i);
                let dist = f64::from(topo.distance(node, center));
                for j in 0..m {
                    let ty = VmTypeId::from_index(j);
                    let ub = f64::from(remaining.get(node, ty).min(req.get(ty)));
                    vars[k][i].push(problem.add_int_var(0.0, ub, dist));
                }
            }
            for j in 0..m {
                let terms: Vec<_> = (0..n).map(|i| (vars[k][i][j], 1.0)).collect();
                problem.add_constraint(terms, Cmp::Eq, f64::from(req.get(VmTypeId::from_index(j))));
            }
        }
        // Shared capacity: Σ_k x^k_ij ≤ L_ij.
        for i in 0..n {
            let node = NodeId::from_index(i);
            for j in 0..m {
                let ty = VmTypeId::from_index(j);
                let terms: Vec<_> = (0..p).map(|k| (vars[k][i][j], 1.0)).collect();
                problem.add_constraint(terms, Cmp::Le, f64::from(remaining.get(node, ty)));
            }
        }

        if let Ok(solution) = problem.solve() {
            let mut allocations = Vec::with_capacity(p);
            let mut total = 0u64;
            for k in 0..p {
                let mut matrix = ResourceMatrix::zeros(n, m);
                for i in 0..n {
                    for j in 0..m {
                        let v = solution.int_value(vars[k][i][j]);
                        if v > 0 {
                            matrix.set(NodeId::from_index(i), VmTypeId::from_index(j), v as u32);
                        }
                    }
                }
                let center = NodeId::from_index(centers[k]);
                total += distance_with_center(&matrix, topo, center);
                allocations.push(Allocation::new(matrix, center));
            }
            if best.as_ref().is_none_or(|b| total < b.total_distance) {
                best = Some(GsdSolution {
                    allocations,
                    total_distance: total,
                });
            }
        }

        // Advance the odometer.
        let mut pos = 0;
        loop {
            if pos == p {
                let best = best.ok_or_else(|| PlacementError::Unsatisfiable {
                    request: combined.clone(),
                })?;
                return Ok(best);
            }
            centers[pos] += 1;
            if centers[pos] < n {
                break;
            }
            centers[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exact, global};
    use std::sync::Arc;
    use vc_model::VmCatalog;
    use vc_topology::{generate, DistanceTiers};

    fn state(rows: &[Vec<u32>], racks: &[usize]) -> ClusterState {
        let topo = Arc::new(generate::heterogeneous(
            racks,
            DistanceTiers::paper_experiment(),
        ));
        let mut types = VmCatalog::ec2_table1().types().to_vec();
        types.truncate(rows[0].len());
        ClusterState::new(
            topo,
            Arc::new(VmCatalog::new(types)),
            ResourceMatrix::from_rows(rows),
        )
    }

    #[test]
    fn single_request_equals_sd() {
        let s = state(&[vec![2, 1], vec![1, 1], vec![2, 0], vec![0, 2]], &[2, 2]);
        let req = Request::from_counts(vec![3, 1]);
        let gsd = solve(std::slice::from_ref(&req), &s).unwrap();
        let sd = exact::shortest_distance(&req, &s).unwrap();
        assert_eq!(gsd.total_distance, sd);
        assert!(gsd.allocations[0].satisfies(&req));
    }

    #[test]
    fn gsd_lower_bounds_algorithm2() {
        let s = state(&[vec![2, 1], vec![1, 1], vec![2, 0], vec![0, 2]], &[2, 2]);
        let queue = vec![
            Request::from_counts(vec![2, 1]),
            Request::from_counts(vec![2, 1]),
        ];
        let optimum = solve(&queue, &s).unwrap();
        let heuristic = global::place_queue(&queue, &s, global::Admission::FifoBlocking).unwrap();
        assert_eq!(heuristic.served.len(), 2, "both requests fit");
        assert!(
            optimum.total_distance <= heuristic.optimized_distance,
            "GSD optimum {} must lower-bound Algorithm 2's {}",
            optimum.total_distance,
            heuristic.optimized_distance
        );
        // Combined feasibility of the optimum.
        let mut check = s.clone();
        for (alloc, req) in optimum.allocations.iter().zip(&queue) {
            assert!(alloc.satisfies(req));
            check.allocate(alloc).unwrap();
        }
    }

    #[test]
    fn batch_can_beat_sequential_sd() {
        // Two identical requests competing for one perfect node: served
        // sequentially the second is pushed away; jointly the optimum
        // balances them. GSD ≤ sequential in all cases.
        let s = state(&[vec![2], vec![1], vec![1], vec![0]], &[2, 2]);
        let queue = vec![Request::from_counts(vec![2]), Request::from_counts(vec![2])];
        let optimum = solve(&queue, &s).unwrap();
        let mut seq_state = s.clone();
        let mut seq_total = 0;
        for req in &queue {
            let a = exact::solve(req, &seq_state).unwrap();
            seq_total += distance_with_center(a.matrix(), seq_state.topology(), a.center());
            seq_state.allocate(&a).unwrap();
        }
        assert!(optimum.total_distance <= seq_total);
    }

    #[test]
    fn over_capacity_batch_rejected() {
        let s = state(&[vec![1], vec![1]], &[2]);
        let queue = vec![Request::from_counts(vec![2]), Request::from_counts(vec![1])];
        assert!(matches!(
            solve(&queue, &s),
            Err(PlacementError::Refused { .. })
        ));
    }

    #[test]
    fn empty_batch_trivial() {
        let s = state(&[vec![1]], &[1]);
        let out = solve(&[], &s).unwrap();
        assert_eq!(out.total_distance, 0);
        assert!(out.allocations.is_empty());
    }

    #[test]
    fn work_estimate_monotone() {
        assert_eq!(work_estimate(4, 2), 16);
        assert_eq!(work_estimate(10, 3), 1000);
        assert!(work_estimate(30, 20) > 100_000);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_enumeration_rejected() {
        let rows = vec![vec![9u32]; 30];
        let s = state(&rows, &[15, 15]);
        let queue = vec![Request::from_counts(vec![1]); 5];
        let _ = solve(&queue, &s);
    }
}
