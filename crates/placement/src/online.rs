//! **Algorithm 1** — the online greedy VM-placement heuristic (paper §IV-A).
//!
//! For each candidate *seed* node the heuristic allocates as much of the
//! request as possible on the seed, then fills from the seed's rack
//! neighbours, then from the remaining nodes — always preferring nodes
//! that can provide more resources (Theorem 1 justifies nearest-first
//! filling). The seed whose completed allocation has the smallest
//! seed-centred distance wins and becomes the cluster's central node.
//!
//! Complexity: `O(n² m)` for `n` nodes and `m` VM types (each of the `n`
//! seeds scans all nodes once; per-node work is `O(m)`), plus the
//! `O(n² log n)` list sorts — matching the paper's stated bound.

use crate::distance::distance_with_center;
use crate::policy::{check_admissible, PlacementError, PlacementPolicy};
use vc_model::{Allocation, ClusterState, Request, ResourceMatrix};
use vc_topology::NodeId;

/// Place `request` with the online heuristic.
///
/// Returns an error if the request is refused (over capacity) or must be
/// queued (over current availability); otherwise always succeeds.
///
/// ```
/// use std::sync::Arc;
/// use vc_model::{ClusterState, Request, VmCatalog};
/// use vc_placement::online;
/// use vc_topology::{generate, DistanceTiers};
///
/// let topo = Arc::new(generate::uniform(3, 10, DistanceTiers::paper_experiment()));
/// let cloud = ClusterState::uniform_capacity(topo, Arc::new(VmCatalog::ec2_table1()), 2);
/// let request = Request::from_counts(vec![2, 4, 1]);
/// let allocation = online::place(&request, &cloud).unwrap();
/// assert!(allocation.satisfies(&request));
/// assert!(allocation.rack_span(cloud.topology()) == 1); // compact
/// ```
pub fn place(request: &Request, state: &ClusterState) -> Result<Allocation, PlacementError> {
    check_admissible(request, state)?;
    let topo = state.topology();
    let remaining = state.remaining();
    let n = state.num_nodes();
    let m = state.num_types();

    // Fast path (Algorithm 1, first loop): a single node covers the whole
    // request — distance 0, that node is the centre.
    for i in topo.node_ids() {
        if remaining.row_request(i).com(request) == *request {
            let mut matrix = ResourceMatrix::zeros(n, m);
            for (ty, count) in request.nonzero() {
                matrix.set(i, ty, count);
            }
            return Ok(Allocation::new(matrix, i));
        }
    }

    // How much a node can contribute towards the (full) request — the sort
    // key for the candidate lists ("the more resources they provide, the
    // greater chance of being selected").
    let providable = |node: NodeId| -> u32 { remaining.row_request(node).com(request).total_vms() };

    let mut best: Option<(u64, ResourceMatrix, NodeId)> = None;
    for seed in topo.node_ids() {
        let mut matrix = ResourceMatrix::zeros(n, m);
        let mut outstanding = request.clone();

        let take_from = |node: NodeId, outstanding: &mut Request, matrix: &mut ResourceMatrix| {
            let take = remaining.row_request(node).com(outstanding);
            if !take.is_zero() {
                for (ty, count) in take.nonzero() {
                    matrix.add(node, ty, count);
                }
                outstanding.checked_sub_assign(&take);
            }
        };

        take_from(seed, &mut outstanding, &mut matrix);

        if !outstanding.is_zero() {
            // rackList: same-rack nodes, most-providing first.
            let mut rack_list = topo.rack_peers(seed);
            rack_list.sort_by_key(|&node| (std::cmp::Reverse(providable(node)), node));
            for node in rack_list {
                if outstanding.is_zero() {
                    break;
                }
                take_from(node, &mut outstanding, &mut matrix);
            }
        }

        if !outstanding.is_zero() {
            // nRackList: remaining nodes, nearest tier first (relevant in
            // multi-cloud topologies), most-providing first within a tier.
            let mut non_rack = topo.non_rack_peers(seed);
            non_rack.sort_by_key(|&node| {
                (
                    topo.distance(seed, node),
                    std::cmp::Reverse(providable(node)),
                    node,
                )
            });
            for node in non_rack {
                if outstanding.is_zero() {
                    break;
                }
                take_from(node, &mut outstanding, &mut matrix);
            }
        }

        // `can_satisfy` passed, and every seed's sweep visits all nodes, so
        // the allocation is always complete here.
        debug_assert!(outstanding.is_zero());
        let d = distance_with_center(&matrix, topo, seed);
        if best.as_ref().is_none_or(|(bd, _, _)| d < *bd) {
            best = Some((d, matrix, seed));
        }
    }

    let (_, matrix, center) = best.ok_or_else(|| PlacementError::Unsatisfiable {
        request: request.clone(),
    })?;
    Ok(Allocation::new(matrix, center))
}

/// [`PlacementPolicy`] wrapper around [`place`].
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineHeuristic;

impl PlacementPolicy for OnlineHeuristic {
    fn name(&self) -> &'static str {
        "online-heuristic"
    }

    fn place(
        &self,
        request: &Request,
        state: &ClusterState,
        _rng: &mut dyn rand::RngCore,
    ) -> Result<Allocation, PlacementError> {
        place(request, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use std::sync::Arc;
    use vc_model::VmCatalog;
    use vc_topology::{generate, DistanceTiers};

    fn state(rows: &[Vec<u32>], racks: &[usize]) -> ClusterState {
        let topo = Arc::new(generate::heterogeneous(
            racks,
            DistanceTiers::paper_experiment(),
        ));
        let cat = Arc::new(VmCatalog::ec2_table1());
        ClusterState::new(topo, cat, ResourceMatrix::from_rows(rows))
    }

    #[test]
    fn single_node_fast_path() {
        let s = state(&[vec![1, 0, 0], vec![3, 3, 3], vec![1, 1, 1]], &[3]);
        let req = Request::from_counts(vec![2, 1, 1]);
        let a = place(&req, &s).unwrap();
        assert!(a.satisfies(&req));
        assert_eq!(a.span(), 1);
        assert_eq!(a.center(), NodeId(1));
    }

    #[test]
    fn fills_rack_before_crossing() {
        // rack 0: nodes 0,1 ; rack 1: nodes 2,3. Request needs 3 V0.
        let s = state(
            &[vec![2, 0, 0], vec![1, 0, 0], vec![2, 0, 0], vec![2, 0, 0]],
            &[2, 2],
        );
        let req = Request::from_counts(vec![3, 0, 0]);
        let a = place(&req, &s).unwrap();
        assert!(a.satisfies(&req));
        // optimal: 2 on node 0 + 1 on node 1 (distance d1) — never cross-rack.
        let d = distance_with_center(a.matrix(), s.topology(), a.center());
        assert_eq!(d, 1);
    }

    #[test]
    fn heuristic_never_beats_exact() {
        let s = state(
            &[
                vec![2, 1, 0],
                vec![1, 0, 1],
                vec![0, 2, 1],
                vec![1, 1, 0],
                vec![2, 0, 1],
            ],
            &[2, 3],
        );
        for req in [
            Request::from_counts(vec![2, 1, 1]),
            Request::from_counts(vec![4, 2, 2]),
            Request::from_counts(vec![1, 1, 0]),
            Request::from_counts(vec![6, 4, 3]),
        ] {
            let h = place(&req, &s).unwrap();
            let e = exact::solve(&req, &s).unwrap();
            let dh = distance_with_center(h.matrix(), s.topology(), h.center());
            let de = distance_with_center(e.matrix(), s.topology(), e.center());
            assert!(dh >= de, "heuristic {dh} < exact {de} for {req}");
            assert!(h.satisfies(&req));
        }
    }

    #[test]
    fn respects_remaining_capacity() {
        let mut s = state(&[vec![2, 0, 0], vec![2, 0, 0]], &[2]);
        // Occupy node 0 fully.
        let first = place(&Request::from_counts(vec![2, 0, 0]), &s).unwrap();
        s.allocate(&first).unwrap();
        let second = place(&Request::from_counts(vec![2, 0, 0]), &s).unwrap();
        assert!(second.matrix().le(&s.remaining()));
        assert_eq!(second.matrix().get(NodeId(1), vc_model::VmTypeId(0)), 2);
    }

    #[test]
    fn queue_signal_when_busy() {
        let mut s = state(&[vec![1, 0, 0]], &[1]);
        let a = place(&Request::from_counts(vec![1, 0, 0]), &s).unwrap();
        s.allocate(&a).unwrap();
        let err = place(&Request::from_counts(vec![1, 0, 0]), &s).unwrap_err();
        assert!(matches!(err, PlacementError::Unsatisfiable { .. }));
    }

    #[test]
    fn refusal_when_over_capacity() {
        let s = state(&[vec![1, 0, 0]], &[1]);
        let err = place(&Request::from_counts(vec![5, 0, 0]), &s).unwrap_err();
        assert!(matches!(err, PlacementError::Refused { .. }));
    }

    #[test]
    fn policy_name() {
        assert_eq!(OnlineHeuristic.name(), "online-heuristic");
    }
}
