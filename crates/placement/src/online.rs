//! **Algorithm 1** — the online greedy VM-placement heuristic (paper §IV-A).
//!
//! For each candidate *seed* node the heuristic allocates as much of the
//! request as possible on the seed, then fills from the seed's rack
//! neighbours, then from the remaining nodes — always preferring nodes
//! that can provide more resources toward the *outstanding remainder*
//! (Theorem 1 justifies nearest-first filling). The seed whose completed
//! allocation has the smallest seed-centred distance wins and becomes the
//! cluster's central node; equal distances break toward the lowest seed id.
//!
//! The naïve scan is `O(n² m)` plus `O(n² log n)` sort work per request.
//! This module keeps that loop structure but makes it scale:
//!
//! * **cached aggregates** — candidate sort keys read the
//!   [`PlacementIndex`](vc_model::PlacementIndex) maintained by
//!   [`ClusterState`] instead of recomputing `row_request().com()` inside
//!   every comparator;
//! * **seed pruning** — each seed has an admissible lower bound on the
//!   distance it could possibly achieve (outstanding VMs at the cheapest
//!   same-rack hop while rack capacity lasts, the cheapest cross-rack hop
//!   after), so seeds that cannot beat the incumbent are skipped and the
//!   scan exits early once the incumbent meets the global bound;
//! * **parallel scan** — seeds are split into contiguous chunks evaluated
//!   on scoped threads (see [`Parallelism`]), sharing the incumbent
//!   distance through an atomic so all chunks prune against the best
//!   found anywhere.
//!
//! Every configuration returns **bit-identical** allocations: pruning
//! rules are strict enough to never discard a potential winner, and the
//! final reduce picks the lexicographically smallest `(distance, seed)`
//! exactly like the sequential loop.

use crate::policy::{check_admissible, PlacementError, PlacementPolicy};
use std::cmp::Reverse;
use std::sync::atomic::{AtomicU64, Ordering};
use vc_model::{Allocation, ClusterState, PlacementIndex, Request, ResourceMatrix, VmTypeId};
use vc_obs::{AttrValue, NoopRecorder, Recorder};
use vc_topology::{NodeId, Topology};

/// Worker-count knob for the seed scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Scan all seeds on the calling thread.
    #[default]
    Sequential,
    /// Use exactly this many scan workers (values ≤ 1 run sequentially).
    Threads(usize),
    /// One worker per available core.
    Auto,
}

impl Parallelism {
    /// Map a CLI-style thread count onto a mode: `0` means [`Auto`]
    /// (one worker per core), `1` means [`Sequential`], anything else is
    /// [`Threads`]`(n)`.
    ///
    /// [`Auto`]: Parallelism::Auto
    /// [`Sequential`]: Parallelism::Sequential
    /// [`Threads`]: Parallelism::Threads
    pub fn from_thread_count(n: usize) -> Self {
        match n {
            0 => Self::Auto,
            1 => Self::Sequential,
            n => Self::Threads(n),
        }
    }

    /// Concrete worker count for a scan over `seeds` candidates.
    fn workers(self, seeds: usize) -> usize {
        let raw = match self {
            Self::Sequential => 1,
            Self::Threads(n) => n.max(1),
            Self::Auto => std::thread::available_parallelism().map_or(1, |p| p.get()),
        };
        raw.min(seeds.max(1))
    }
}

/// How the seed scan should run. The default is pruned and sequential —
/// the fastest single-threaded configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanConfig {
    /// Skip seeds whose admissible lower bound cannot beat the incumbent,
    /// abort fills that have already lost, and early-exit once the
    /// incumbent meets the global bound.
    pub prune: bool,
    /// Seed-scan threading.
    pub parallelism: Parallelism,
}

impl Default for ScanConfig {
    fn default() -> Self {
        Self {
            prune: true,
            parallelism: Parallelism::Sequential,
        }
    }
}

impl ScanConfig {
    /// The unpruned single-threaded scan — the measurement baseline that
    /// evaluates every seed in full.
    pub const fn sequential_baseline() -> Self {
        Self {
            prune: false,
            parallelism: Parallelism::Sequential,
        }
    }

    /// Pruned, single-threaded (the default).
    pub const fn pruned() -> Self {
        Self {
            prune: true,
            parallelism: Parallelism::Sequential,
        }
    }

    /// Pruned with an explicit thread count (`0` = one worker per core).
    pub fn pruned_parallel(threads: usize) -> Self {
        Self {
            prune: true,
            parallelism: Parallelism::from_thread_count(threads),
        }
    }
}

/// What one scan did — fuels the `placement.seeds_*` observability
/// counters and the bench suite's pruning-efficacy numbers.
///
/// In parallel runs the split between `seeds_pruned` and `seeds_aborted`
/// depends on cross-thread timing; only the allocation itself and the
/// invariant `scanned + pruned + aborted == total` are deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Candidate seeds overall (`n`, or what was left after the fast path).
    pub seeds_total: u64,
    /// Seeds evaluated to a complete allocation.
    pub seeds_scanned: u64,
    /// Seeds skipped outright by the lower bound.
    pub seeds_pruned: u64,
    /// Seeds whose fill was cut off once it could no longer win.
    pub seeds_aborted: u64,
    /// Fully evaluated seeds that tied the incumbent distance and lost the
    /// lower-id tie-break (a subset of `seeds_scanned`). With pruning on,
    /// most ties are cut mid-fill and show up as `seeds_aborted` instead.
    pub seeds_tied: u64,
    /// Whether a single node covered the whole request (no seed scan ran).
    pub fast_path: bool,
}

impl ScanStats {
    fn absorb(&mut self, other: &ScanStats) {
        self.seeds_total += other.seeds_total;
        self.seeds_scanned += other.seeds_scanned;
        self.seeds_pruned += other.seeds_pruned;
        self.seeds_aborted += other.seeds_aborted;
        self.seeds_tied += other.seeds_tied;
    }
}

/// Everything worth knowing about one placement decision — the
/// [`ScanStats`] plus the outcome (chosen central node, its seed-centred
/// distance) and the pruning context (global lower bound, worker count).
/// Emitted as a `placement.scan_audit` event by [`place_recorded`] and
/// surfaced by `vc report`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanAudit {
    /// Scan work breakdown (scanned / pruned / aborted / tied).
    pub stats: ScanStats,
    /// The winning seed — the virtual cluster's central node.
    pub center: NodeId,
    /// Seed-centred distance of the winning allocation.
    pub distance: u64,
    /// `min` over all seeds of the admissible lower bound (0 when pruning
    /// was off or the fast path fired).
    pub lower_bound: u64,
    /// Scan workers actually used (1 = sequential or fast path).
    pub workers: u64,
}

impl ScanAudit {
    /// How far the chosen allocation sits above the admissible global
    /// lower bound. 0 means the scan proved the result optimal *for this
    /// seed-greedy family*; larger gaps flag requests worth exchanging.
    pub fn bound_gap(&self) -> u64 {
        self.distance.saturating_sub(self.lower_bound)
    }

    /// JSON object mirroring the `placement.scan_audit` event attributes.
    pub fn to_json(&self) -> serde::Value {
        use serde::Value;
        Value::Object(vec![
            ("center".to_string(), Value::U64(self.center.0 as u64)),
            ("dc".to_string(), Value::U64(self.distance)),
            ("lower_bound".to_string(), Value::U64(self.lower_bound)),
            ("bound_gap".to_string(), Value::U64(self.bound_gap())),
            ("workers".to_string(), Value::U64(self.workers)),
            (
                "seeds_total".to_string(),
                Value::U64(self.stats.seeds_total),
            ),
            (
                "seeds_scanned".to_string(),
                Value::U64(self.stats.seeds_scanned),
            ),
            (
                "seeds_pruned".to_string(),
                Value::U64(self.stats.seeds_pruned),
            ),
            (
                "seeds_aborted".to_string(),
                Value::U64(self.stats.seeds_aborted),
            ),
            ("seeds_tied".to_string(), Value::U64(self.stats.seeds_tied)),
            ("fast_path".to_string(), Value::Bool(self.stats.fast_path)),
        ])
    }

    /// Emit this audit through `rec` as a `placement.scan_audit` event.
    fn emit(&self, rec: &dyn Recorder, t_us: u64) {
        rec.counter_add("placement.seeds_scanned", self.stats.seeds_scanned);
        rec.counter_add("placement.seeds_pruned", self.stats.seeds_pruned);
        rec.counter_add("placement.seeds_aborted", self.stats.seeds_aborted);
        if !rec.enabled() {
            return;
        }
        rec.event(
            "placement.scan_audit",
            t_us,
            None,
            &[
                ("center", AttrValue::from(self.center.0 as u64)),
                ("dc", AttrValue::from(self.distance)),
                ("lower_bound", AttrValue::from(self.lower_bound)),
                ("bound_gap", AttrValue::from(self.bound_gap())),
                ("workers", AttrValue::from(self.workers)),
                ("seeds_total", AttrValue::from(self.stats.seeds_total)),
                ("seeds_scanned", AttrValue::from(self.stats.seeds_scanned)),
                ("seeds_pruned", AttrValue::from(self.stats.seeds_pruned)),
                ("seeds_aborted", AttrValue::from(self.stats.seeds_aborted)),
                ("seeds_tied", AttrValue::from(self.stats.seeds_tied)),
                ("fast_path", AttrValue::Bool(self.stats.fast_path)),
            ],
        );
    }
}

/// Place `request` with the online heuristic (default [`ScanConfig`]).
///
/// Returns an error if the request is refused (over capacity), malformed
/// (wrong type-vector length), or must be queued (over current
/// availability); otherwise always succeeds.
///
/// ```
/// use std::sync::Arc;
/// use vc_model::{ClusterState, Request, VmCatalog};
/// use vc_placement::online;
/// use vc_topology::{generate, DistanceTiers};
///
/// let topo = Arc::new(generate::uniform(3, 10, DistanceTiers::paper_experiment()));
/// let cloud = ClusterState::uniform_capacity(topo, Arc::new(VmCatalog::ec2_table1()), 2);
/// let request = Request::from_counts(vec![2, 4, 1]);
/// let allocation = online::place(&request, &cloud).unwrap();
/// assert!(allocation.satisfies(&request));
/// assert!(allocation.rack_span(cloud.topology()) == 1); // compact
/// ```
pub fn place(request: &Request, state: &ClusterState) -> Result<Allocation, PlacementError> {
    place_with(request, state, ScanConfig::default()).map(|(allocation, _)| allocation)
}

/// Place `request` with an explicit [`ScanConfig`], also returning the
/// [`ScanStats`] for observability. All configurations produce
/// bit-identical allocations.
pub fn place_with(
    request: &Request,
    state: &ClusterState,
    config: ScanConfig,
) -> Result<(Allocation, ScanStats), PlacementError> {
    place_recorded(request, state, config, &NoopRecorder, 0)
        .map(|(allocation, audit)| (allocation, audit.stats))
}

/// [`place_with`] plus a decision audit, emitting placement telemetry
/// through `rec` as it runs:
///
/// * `placement.seeds_scanned` / `.seeds_pruned` / `.seeds_aborted`
///   counters (request totals, deterministic sums);
/// * one `placement.scan_chunk` event per scan worker, recorded *by that
///   worker's thread* when the recorder is thread-safe
///   ([`Recorder::as_sync`]), so pruning/bound telemetry lands per thread;
/// * one `placement.scan_audit` event per request (see [`ScanAudit`]).
///
/// When the scan is parallel but `rec` is not thread-safe, telemetry is
/// aggregated on the calling thread instead and a one-time
/// `placement.recorder_unsync` counter + stderr warning flags the lost
/// granularity — nothing is silently dropped.
///
/// `t_us` stamps the emitted events (simulation time of the decision).
pub fn place_recorded(
    request: &Request,
    state: &ClusterState,
    config: ScanConfig,
    rec: &dyn Recorder,
    t_us: u64,
) -> Result<(Allocation, ScanAudit), PlacementError> {
    check_admissible(request, state)?;
    let topo = state.topology();
    let remaining = state.remaining();
    let index = state.index();
    let n = state.num_nodes();
    let m = state.num_types();

    // Fast path (Algorithm 1, first loop): a single node covers the whole
    // request — distance 0, that node is the centre.
    for i in topo.node_ids() {
        if covers(remaining.row(i), request.counts()) {
            let mut matrix = ResourceMatrix::zeros(n, m);
            for (ty, count) in request.nonzero() {
                matrix.set(i, ty, count);
            }
            let stats = ScanStats {
                seeds_total: n as u64,
                fast_path: true,
                ..ScanStats::default()
            };
            let audit = ScanAudit {
                stats,
                center: i,
                distance: 0,
                lower_bound: 0,
                workers: 1,
            };
            audit.emit(rec, t_us);
            return Ok((Allocation::new(matrix, i), audit));
        }
    }

    let (lower_bounds, global_min_lb) = if config.prune {
        let _t = vc_obs::PhaseTimer::start(rec, vc_obs::prof::BOUND_PRECOMPUTE);
        let lbs: Vec<u64> = topo
            .node_ids()
            .map(|seed| seed_lower_bound(topo, index, remaining, request.counts(), seed))
            .collect();
        let min = lbs.iter().copied().min().unwrap_or(0);
        (lbs, min)
    } else {
        (Vec::new(), 0)
    };

    let ctx = ScanCtx {
        topo,
        remaining,
        index,
        request: request.counts(),
        req_total: request.total_vms(),
        prune: config.prune,
        lower_bounds,
        global_min_lb,
    };

    let workers = config.parallelism.workers(n);
    let shared_best = AtomicU64::new(u64::MAX);
    let scan_timer = vc_obs::PhaseTimer::start(rec, vc_obs::prof::SEED_SCAN);
    let (best, stats) = if workers <= 1 {
        scan_range(&ctx, 0, n, &shared_best, Some(rec), t_us, 0)
    } else {
        // Scan threads need a `Sync` view of the recorder to record from
        // their own threads; without one, telemetry degrades gracefully to
        // calling-thread aggregation (flagged once, never dropped).
        let sync_rec = rec.as_sync();
        if sync_rec.is_none() && rec.enabled() {
            warn_recorder_unsync(rec);
        }
        let chunk = n.div_ceil(workers);
        let results: Vec<(Option<SeedResult>, ScanStats)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let ctx = &ctx;
                    let shared = &shared_best;
                    let lo = (w * chunk).min(n);
                    let hi = ((w + 1) * chunk).min(n);
                    scope.spawn(move || scan_range(ctx, lo, hi, shared, sync_rec, t_us, w))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("seed-scan worker panicked"))
                .collect()
        });
        let mut best: Option<SeedResult> = None;
        let mut stats = ScanStats::default();
        for (candidate, chunk_stats) in results {
            stats.absorb(&chunk_stats);
            if let Some(c) = candidate {
                // Lexicographic (distance, seed id) — identical to the
                // sequential incumbent rule.
                match best.as_ref() {
                    Some(b) if c.distance == b.distance => stats.seeds_tied += 1,
                    Some(b) if (c.distance, c.seed) < (b.distance, b.seed) => best = Some(c),
                    Some(_) => {}
                    None => best = Some(c),
                }
            }
        }
        (best, stats)
    };
    drop(scan_timer);

    let Some(win) = best else {
        return Err(PlacementError::Unsatisfiable {
            request: request.clone(),
        });
    };
    let mut matrix = ResourceMatrix::zeros(n, m);
    for &(node, ty, count) in &win.takes {
        matrix.set(node, VmTypeId::from_index(ty as usize), count);
    }
    let audit = ScanAudit {
        stats,
        center: win.seed,
        distance: win.distance,
        lower_bound: global_min_lb,
        workers: workers as u64,
    };
    audit.emit(rec, t_us);
    Ok((Allocation::new(matrix, win.seed), audit))
}

/// One-time notice (satellite of the audit work): a parallel scan was
/// asked to record through a recorder without a `Sync` view, so per-thread
/// chunk events are unavailable and totals are aggregated after the join.
fn warn_recorder_unsync(rec: &dyn Recorder) {
    rec.counter_add("placement.recorder_unsync", 1);
    static WARNED: std::sync::Once = std::sync::Once::new();
    WARNED.call_once(|| {
        eprintln!(
            "vc-placement: parallel seed scan with a recorder that has no thread-safe view; \
             per-worker scan_chunk events are skipped and totals are aggregated on the \
             calling thread (use vc_obs::ShardedRecorder to keep per-thread telemetry)"
        );
    });
}

/// Shared read-only inputs for one scan.
struct ScanCtx<'a> {
    topo: &'a Topology,
    remaining: &'a ResourceMatrix,
    index: &'a PlacementIndex,
    request: &'a [u32],
    req_total: u32,
    prune: bool,
    /// Per-seed admissible lower bounds (empty when pruning is off).
    lower_bounds: Vec<u64>,
    /// `min(lower_bounds)` — an incumbent at or below this cannot be beaten.
    global_min_lb: u64,
}

/// A completed seed evaluation: the seed-centred distance and the sparse
/// `(node, type, count)` takes that reconstruct the allocation matrix.
struct SeedResult {
    distance: u64,
    seed: NodeId,
    takes: Vec<(NodeId, u32, u32)>,
}

/// `min(row, want)` summed — how much this node can provide toward `want`.
#[inline]
fn capped_total(row: &[u32], want: &[u32]) -> u32 {
    row.iter().zip(want).map(|(&a, &b)| a.min(b)).sum()
}

/// Whether `row` covers `want` elementwise.
#[inline]
fn covers(row: &[u32], want: &[u32]) -> bool {
    row.iter().zip(want).all(|(&a, &b)| a >= b)
}

/// Admissible lower bound on the seed-centred distance any allocation
/// seeded at `seed` can achieve: the seed takes its elementwise best, the
/// outstanding VMs travel at least the cheapest same-rack hop while the
/// rack's spare (non-seed) capacity lasts, and at least the cheapest
/// cross-rack hop after that. Never overestimates, so pruning on it is
/// exact.
fn seed_lower_bound(
    topo: &Topology,
    index: &PlacementIndex,
    remaining: &ResourceMatrix,
    request: &[u32],
    seed: NodeId,
) -> u64 {
    let row = remaining.row(seed);
    let rack_free = index.rack_free(topo.rack_of(seed));
    let mut out_total: u64 = 0;
    let mut in_rack_cap: u64 = 0;
    for j in 0..request.len() {
        let out_j = u64::from(request[j] - row[j].min(request[j]));
        out_total += out_j;
        in_rack_cap += u64::from(rack_free[j] - row[j].min(rack_free[j])).min(out_j);
    }
    if out_total == 0 {
        return 0;
    }
    match (
        index.min_same_rack_distance(seed),
        index.min_cross_rack_distance(seed),
    ) {
        (None, None) => 0,
        (Some(d1), None) => u64::from(d1) * out_total,
        (None, Some(d2)) => u64::from(d2) * out_total,
        (Some(d1), Some(d2)) if d1 <= d2 => {
            let near = in_rack_cap.min(out_total);
            u64::from(d1) * near + u64::from(d2) * (out_total - near)
        }
        // Same-rack hops costing more than cross-rack ones only happen
        // with explicit distance matrices; assume every outstanding VM
        // travels at the cheaper cross-rack hop — still admissible.
        (Some(_), Some(d2)) => u64::from(d2) * out_total,
    }
}

/// Evaluate seeds `lo..hi` (ascending ids), returning the chunk's best
/// completed seed and its scan statistics. `shared_best` carries the best
/// distance found by *any* chunk; pruning against it uses strictly-greater
/// comparisons so ties (which break by seed id in the final reduce) are
/// never discarded.
///
/// When `rec` is present a `placement.scan_chunk` event is recorded *from
/// this thread* as the chunk finishes — generic over `R` so the enabled
/// check and the event construction monomorphize away for
/// [`NoopRecorder`].
fn scan_range<R: Recorder + ?Sized>(
    ctx: &ScanCtx<'_>,
    lo: usize,
    hi: usize,
    shared_best: &AtomicU64,
    rec: Option<&R>,
    t_us: u64,
    worker: usize,
) -> (Option<SeedResult>, ScanStats) {
    let m = ctx.request.len();
    let mut stats = ScanStats {
        seeds_total: (hi - lo) as u64,
        ..ScanStats::default()
    };
    let mut best: Option<SeedResult> = None;
    // Scratch reused across seeds to keep the hot loop allocation-free.
    let mut out = vec![0u32; m];
    let mut takes: Vec<(NodeId, u32, u32)> = Vec::new();
    let mut rack_buf: Vec<(Reverse<u32>, NodeId)> = Vec::new();
    let mut far_buf: Vec<(u32, Reverse<u32>, NodeId)> = Vec::new();

    for s in lo..hi {
        let seed = NodeId::from_index(s);
        let local_best_d = best.as_ref().map_or(u64::MAX, |b| b.distance);
        if ctx.prune {
            // Incumbent already meets the best bound any seed has — no
            // remaining seed can strictly beat it, and later ids lose ties.
            if local_best_d <= ctx.global_min_lb {
                stats.seeds_pruned += (hi - s) as u64;
                break;
            }
            let lb = ctx.lower_bounds[s];
            if lb >= local_best_d || lb > shared_best.load(Ordering::Relaxed) {
                stats.seeds_pruned += 1;
                continue;
            }
        }
        match evaluate_seed(
            ctx,
            seed,
            local_best_d,
            shared_best,
            &mut out,
            &mut takes,
            &mut rack_buf,
            &mut far_buf,
        ) {
            Some(distance) => {
                stats.seeds_scanned += 1;
                // Ascending ids within the chunk: a tie keeps the earlier
                // incumbent, so only strictly smaller distances replace it.
                if distance < local_best_d {
                    shared_best.fetch_min(distance, Ordering::Relaxed);
                    best = Some(SeedResult {
                        distance,
                        seed,
                        takes: takes.clone(),
                    });
                } else if distance == local_best_d {
                    stats.seeds_tied += 1;
                }
            }
            None => stats.seeds_aborted += 1,
        }
    }
    if let Some(rec) = rec {
        if rec.enabled() {
            rec.event(
                "placement.scan_chunk",
                t_us,
                None,
                &[
                    ("worker", AttrValue::from(worker as u64)),
                    ("lo", AttrValue::from(lo as u64)),
                    ("hi", AttrValue::from(hi as u64)),
                    ("seeds_scanned", AttrValue::from(stats.seeds_scanned)),
                    ("seeds_pruned", AttrValue::from(stats.seeds_pruned)),
                    ("seeds_aborted", AttrValue::from(stats.seeds_aborted)),
                    ("seeds_tied", AttrValue::from(stats.seeds_tied)),
                ],
            );
        }
    }
    (best, stats)
}

/// Run one seed's greedy fill: seed first, then rack peers keyed on what
/// they provide toward the *post-seed* outstanding remainder, then
/// non-rack nodes keyed on `(distance, providable-toward-remainder, id)`.
///
/// Returns the seed-centred distance, or `None` if the fill was aborted
/// because it could no longer win (pruning only) or could not complete.
#[allow(clippy::too_many_arguments)]
fn evaluate_seed(
    ctx: &ScanCtx<'_>,
    seed: NodeId,
    local_best_d: u64,
    shared_best: &AtomicU64,
    out: &mut [u32],
    takes: &mut Vec<(NodeId, u32, u32)>,
    rack_buf: &mut Vec<(Reverse<u32>, NodeId)>,
    far_buf: &mut Vec<(u32, Reverse<u32>, NodeId)>,
) -> Option<u64> {
    out.copy_from_slice(ctx.request);
    takes.clear();
    let mut out_total = ctx.req_total;
    let mut distance: u64 = 0;

    let take = |node: NodeId, out: &mut [u32], takes: &mut Vec<(NodeId, u32, u32)>| -> u32 {
        let row = ctx.remaining.row(node);
        let mut got = 0u32;
        for (j, o) in out.iter_mut().enumerate() {
            let t = row[j].min(*o);
            if t > 0 {
                *o -= t;
                got += t;
                takes.push((node, j as u32, t));
            }
        }
        got
    };

    out_total -= take(seed, out, takes);

    if out_total > 0 {
        // rackList: same-rack peers, most-providing-toward-the-remainder
        // first. When the remainder dominates the rack's free counts the
        // index's (free-total, id) order is already exactly that, so the
        // sort is skipped.
        let rack = ctx.topo.rack_of(seed);
        let members = ctx.index.rack_candidates(rack);
        let dominated = covers(out, ctx.index.rack_free(rack));
        rack_buf.clear();
        if dominated {
            // Remainder dominates the rack: providable(i) = free-total(i),
            // so the index order is already the sorted order.
            rack_buf.extend(
                members
                    .iter()
                    .filter(|&&n| n != seed)
                    .map(|&n| (Reverse(0), n)),
            );
        } else {
            rack_buf.extend(
                members
                    .iter()
                    .filter(|&&n| n != seed)
                    .map(|&n| (Reverse(capped_total(ctx.remaining.row(n), out)), n)),
            );
            rack_buf.sort_unstable();
        }
        for &(_, node) in rack_buf.iter() {
            if out_total == 0 {
                break;
            }
            let got = take(node, out, takes);
            if got > 0 {
                out_total -= got;
                distance += u64::from(got) * u64::from(ctx.topo.distance(seed, node));
                if ctx.prune
                    && (distance >= local_best_d || distance > shared_best.load(Ordering::Relaxed))
                {
                    return None;
                }
            }
        }
    }

    if out_total > 0 {
        // nRackList: remaining nodes, nearest tier first, most-providing
        // toward the post-rack remainder within a tier.
        let rack = ctx.topo.rack_of(seed);
        far_buf.clear();
        for node in ctx.topo.node_ids() {
            if ctx.topo.rack_of(node) != rack {
                far_buf.push((
                    ctx.topo.distance(seed, node),
                    Reverse(capped_total(ctx.remaining.row(node), out)),
                    node,
                ));
            }
        }
        far_buf.sort_unstable();
        for &(d_hop, _, node) in far_buf.iter() {
            if out_total == 0 {
                break;
            }
            let got = take(node, out, takes);
            if got > 0 {
                out_total -= got;
                distance += u64::from(got) * u64::from(d_hop);
                if ctx.prune
                    && (distance >= local_best_d || distance > shared_best.load(Ordering::Relaxed))
                {
                    return None;
                }
            }
        }
    }

    // `can_satisfy` passed, and a full sweep visits every node, so the
    // fill always completes; guard anyway so an incomplete fill can never
    // masquerade as a (wrong) winner.
    (out_total == 0).then_some(distance)
}

/// [`PlacementPolicy`] wrapper around [`place`] (default scan).
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineHeuristic;

impl PlacementPolicy for OnlineHeuristic {
    fn name(&self) -> &'static str {
        "online-heuristic"
    }

    fn place(
        &self,
        request: &Request,
        state: &ClusterState,
        _rng: &mut dyn rand::RngCore,
    ) -> Result<Allocation, PlacementError> {
        place(request, state)
    }

    fn place_recorded(
        &self,
        request: &Request,
        state: &ClusterState,
        _rng: &mut dyn rand::RngCore,
        rec: &dyn Recorder,
        t_us: u64,
    ) -> Result<Allocation, PlacementError> {
        place_recorded(request, state, ScanConfig::default(), rec, t_us)
            .map(|(allocation, _)| allocation)
    }
}

/// [`PlacementPolicy`] wrapper around [`place_with`] carrying an explicit
/// [`ScanConfig`] — the policy the CLI's `--placement-threads` flag
/// constructs.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineScan(pub ScanConfig);

impl PlacementPolicy for OnlineScan {
    fn name(&self) -> &'static str {
        "online-heuristic"
    }

    fn place(
        &self,
        request: &Request,
        state: &ClusterState,
        _rng: &mut dyn rand::RngCore,
    ) -> Result<Allocation, PlacementError> {
        place_with(request, state, self.0).map(|(allocation, _)| allocation)
    }

    fn place_recorded(
        &self,
        request: &Request,
        state: &ClusterState,
        _rng: &mut dyn rand::RngCore,
        rec: &dyn Recorder,
        t_us: u64,
    ) -> Result<Allocation, PlacementError> {
        place_recorded(request, state, self.0, rec, t_us).map(|(allocation, _)| allocation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::distance_with_center;
    use crate::exact;
    use std::sync::Arc;
    use vc_model::VmCatalog;
    use vc_topology::{generate, DistanceTiers};

    fn state(rows: &[Vec<u32>], racks: &[usize]) -> ClusterState {
        let topo = Arc::new(generate::heterogeneous(
            racks,
            DistanceTiers::paper_experiment(),
        ));
        let cat = Arc::new(VmCatalog::ec2_table1());
        ClusterState::new(topo, cat, ResourceMatrix::from_rows(rows))
    }

    fn all_configs() -> [ScanConfig; 4] {
        [
            ScanConfig::sequential_baseline(),
            ScanConfig::pruned(),
            ScanConfig::pruned_parallel(2),
            ScanConfig {
                prune: false,
                parallelism: Parallelism::Threads(3),
            },
        ]
    }

    #[test]
    fn single_node_fast_path() {
        let s = state(&[vec![1, 0, 0], vec![3, 3, 3], vec![1, 1, 1]], &[3]);
        let req = Request::from_counts(vec![2, 1, 1]);
        let (a, stats) = place_with(&req, &s, ScanConfig::default()).unwrap();
        assert!(a.satisfies(&req));
        assert_eq!(a.span(), 1);
        assert_eq!(a.center(), NodeId(1));
        assert!(stats.fast_path);
    }

    #[test]
    fn fills_rack_before_crossing() {
        // rack 0: nodes 0,1 ; rack 1: nodes 2,3. Request needs 3 V0.
        let s = state(
            &[vec![2, 0, 0], vec![1, 0, 0], vec![2, 0, 0], vec![2, 0, 0]],
            &[2, 2],
        );
        let req = Request::from_counts(vec![3, 0, 0]);
        let a = place(&req, &s).unwrap();
        assert!(a.satisfies(&req));
        // optimal: 2 on node 0 + 1 on node 1 (distance d1) — never cross-rack.
        let d = distance_with_center(a.matrix(), s.topology(), a.center());
        assert_eq!(d, 1);
    }

    #[test]
    fn stale_full_request_key_would_pick_worse_order() {
        // Regression for the stale-sort-key bug: the rack list must be
        // keyed on the remainder *after* the seed took its share.
        //
        // Seed 0 takes [2,0,0]; remainder [0,2,0]. Against the remainder
        // node 2 provides 2 and node 1 provides 1, so node 2 alone
        // completes the cluster (span 2). Keyed against the *full*
        // request both tie at 2 and node 1 goes first, dragging node 2 in
        // anyway (span 3) — strictly worse fragmentation.
        let s = state(&[vec![2, 0, 0], vec![1, 1, 0], vec![0, 2, 0]], &[3]);
        let req = Request::from_counts(vec![2, 2, 0]);
        let a = place(&req, &s).unwrap();
        assert!(a.satisfies(&req));
        assert_eq!(a.center(), NodeId(0));
        assert_eq!(a.span(), 2, "remainder key must finish on node 2 alone");
        assert_eq!(a.matrix().node_total(NodeId(1)), 0);
        assert_eq!(a.matrix().node_total(NodeId(2)), 2);
    }

    #[test]
    fn all_scan_configs_bit_identical() {
        let s = state(
            &[
                vec![2, 1, 0],
                vec![1, 0, 1],
                vec![0, 2, 1],
                vec![1, 1, 0],
                vec![2, 0, 1],
                vec![1, 2, 2],
            ],
            &[2, 2, 2],
        );
        for req in [
            Request::from_counts(vec![2, 1, 1]),
            Request::from_counts(vec![4, 2, 2]),
            Request::from_counts(vec![6, 5, 4]),
        ] {
            let (base, base_stats) =
                place_with(&req, &s, ScanConfig::sequential_baseline()).unwrap();
            assert_eq!(
                base_stats.seeds_scanned + base_stats.seeds_aborted,
                base_stats.seeds_total,
                "baseline never prunes"
            );
            for config in all_configs() {
                let (a, stats) = place_with(&req, &s, config).unwrap();
                assert_eq!(a.matrix(), base.matrix(), "{config:?}");
                assert_eq!(a.center(), base.center(), "{config:?}");
                assert_eq!(
                    stats.seeds_scanned + stats.seeds_pruned + stats.seeds_aborted,
                    stats.seeds_total,
                    "{config:?}"
                );
            }
        }
    }

    #[test]
    fn pruning_skips_seeds_on_uniform_cloud() {
        let topo = Arc::new(generate::uniform(4, 8, DistanceTiers::paper_experiment()));
        let s = ClusterState::uniform_capacity(topo, Arc::new(VmCatalog::ec2_table1()), 1);
        // Needs several nodes, so no fast path; uniform racks mean the
        // first completed seed already meets the global lower bound.
        let req = Request::from_counts(vec![3, 3, 3]);
        let (_, stats) = place_with(&req, &s, ScanConfig::pruned()).unwrap();
        assert!(!stats.fast_path);
        assert!(
            stats.seeds_pruned > 0,
            "expected pruning on a uniform cloud, got {stats:?}"
        );
    }

    #[test]
    fn heuristic_never_beats_exact() {
        let s = state(
            &[
                vec![2, 1, 0],
                vec![1, 0, 1],
                vec![0, 2, 1],
                vec![1, 1, 0],
                vec![2, 0, 1],
            ],
            &[2, 3],
        );
        for req in [
            Request::from_counts(vec![2, 1, 1]),
            Request::from_counts(vec![4, 2, 2]),
            Request::from_counts(vec![1, 1, 0]),
            Request::from_counts(vec![6, 4, 3]),
        ] {
            let h = place(&req, &s).unwrap();
            let e = exact::solve(&req, &s).unwrap();
            let dh = distance_with_center(h.matrix(), s.topology(), h.center());
            let de = distance_with_center(e.matrix(), s.topology(), e.center());
            assert!(dh >= de, "heuristic {dh} < exact {de} for {req}");
            assert!(h.satisfies(&req));
        }
    }

    #[test]
    fn respects_remaining_capacity() {
        let mut s = state(&[vec![2, 0, 0], vec![2, 0, 0]], &[2]);
        // Occupy node 0 fully.
        let first = place(&Request::from_counts(vec![2, 0, 0]), &s).unwrap();
        s.allocate(&first).unwrap();
        let second = place(&Request::from_counts(vec![2, 0, 0]), &s).unwrap();
        assert!(second.matrix().le(s.remaining()));
        assert_eq!(second.matrix().get(NodeId(1), vc_model::VmTypeId(0)), 2);
    }

    #[test]
    fn queue_signal_when_busy() {
        let mut s = state(&[vec![1, 0, 0]], &[1]);
        let a = place(&Request::from_counts(vec![1, 0, 0]), &s).unwrap();
        s.allocate(&a).unwrap();
        let err = place(&Request::from_counts(vec![1, 0, 0]), &s).unwrap_err();
        assert!(matches!(err, PlacementError::Unsatisfiable { .. }));
    }

    #[test]
    fn refusal_when_over_capacity() {
        let s = state(&[vec![1, 0, 0]], &[1]);
        let err = place(&Request::from_counts(vec![5, 0, 0]), &s).unwrap_err();
        assert!(matches!(err, PlacementError::Refused { .. }));
    }

    #[test]
    fn malformed_request_rejected() {
        let s = state(&[vec![1, 0, 0]], &[1]);
        let err = place(&Request::from_counts(vec![1, 0]), &s).unwrap_err();
        assert!(matches!(err, PlacementError::Malformed { .. }));
    }

    #[test]
    fn parallelism_knob_mapping() {
        assert_eq!(Parallelism::from_thread_count(0), Parallelism::Auto);
        assert_eq!(Parallelism::from_thread_count(1), Parallelism::Sequential);
        assert_eq!(Parallelism::from_thread_count(4), Parallelism::Threads(4));
        assert_eq!(Parallelism::Threads(3).workers(2), 2);
        assert_eq!(Parallelism::Sequential.workers(100), 1);
    }

    #[test]
    fn policy_name() {
        assert_eq!(OnlineHeuristic.name(), "online-heuristic");
        assert_eq!(OnlineScan::default().name(), "online-heuristic");
    }
}
