//! Affinity-aware virtual cluster placement — the paper's core
//! contribution (§III–§IV).
//!
//! Provides:
//!
//! * [`distance`] — the **cluster distance** metric `DC(C)` (Definition 1)
//!   and per-centre distance profiles;
//! * [`exact`] — an exact Shortest-Distance solver built on the
//!   fixed-centre decomposition (plus a brute-force enumerator for
//!   cross-validation on tiny instances);
//! * [`ilp`] — the paper's §III-B integer-programming formulation, solved
//!   with the from-scratch `vc-ilp` MILP solver (one ILP per candidate
//!   centre);
//! * [`online`] — **Algorithm 1**, the `O(n²m)` online greedy heuristic;
//! * [`global`] — **Algorithm 2**, the global sub-optimisation pass with
//!   Theorem-2 VM exchanges over a request queue;
//! * [`gsd`] — the §III-C Global Shortest Distance optimum, exactly, for
//!   small instances (centre-tuple enumeration × transportation ILPs);
//! * [`baselines`] — affinity-oblivious policies (random, first-fit,
//!   best-fit, spread) used as experimental comparators;
//! * [`migration`] — node-failure repair and affinity-driven VM
//!   rebalancing (the paper's §VII future work);
//! * [`theorems`] — Theorems 1 and 2 as checkable predicates, exercised by
//!   the property-test suite;
//! * [`PlacementPolicy`] — the object-safe strategy interface used by the
//!   cloud simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod distance;
pub mod exact;
pub mod global;
pub mod gsd;
pub mod ilp;
pub mod migration;
pub mod online;
pub mod theorems;

mod policy;

pub use policy::{PlacementError, PlacementPolicy};
