//! The cluster-distance metric `DC(C)` (paper Definition 1).
//!
//! For an allocation matrix `C` and distance matrix `D`:
//!
//! ```text
//! DC(C) = min_k Σ_i (Σ_j C_ij) · D_ik
//! ```
//!
//! i.e. the VM-count-weighted sum of distances from the best possible
//! *central node* `N_k`. MapReduce virtual clusters are master/slave
//! topologies, so the centre models the master placement and the weighted
//! sum approximates the all-to-master (and, by symmetry of the tiers, the
//! intra-cluster) traffic cost.

use vc_model::ResourceMatrix;
use vc_topology::{NodeId, Topology};

/// The weighted distance of allocation `matrix` measured from a *fixed*
/// central node `center`: `Σ_i (Σ_j C_ij) · D_{i,center}`.
///
/// # Panics
/// Panics if matrix and topology node counts disagree, or if `center` is
/// out of range.
pub fn distance_with_center(matrix: &ResourceMatrix, topo: &Topology, center: NodeId) -> u64 {
    assert_eq!(
        matrix.num_nodes(),
        topo.num_nodes(),
        "allocation and topology node counts disagree"
    );
    let row = topo.distance_matrix().row(center);
    (0..matrix.num_nodes())
        .map(|i| {
            let node = NodeId::from_index(i);
            u64::from(matrix.node_total(node)) * u64::from(row[i])
        })
        .sum()
}

/// The cluster distance `DC(C)`: minimum over all candidate centres, with
/// the minimising centre (smallest node id on ties).
///
/// ```
/// use vc_model::ResourceMatrix;
/// use vc_placement::distance::cluster_distance;
/// use vc_topology::{generate, DistanceTiers, NodeId};
///
/// // Two racks of two nodes; 2 VMs on N0, 1 on N1 (same rack), 1 on N2.
/// let topo = generate::uniform(2, 2, DistanceTiers::paper_experiment());
/// let c = ResourceMatrix::from_rows(&[vec![2], vec![1], vec![1], vec![0]]);
/// let (dc, center) = cluster_distance(&c, &topo);
/// assert_eq!((dc, center), (3, NodeId(0))); // 1·d1 + 1·d2 from N0
/// ```
///
/// Any node of the cloud may serve as centre; for a non-empty allocation
/// the optimum always lies on an occupied node anyway (moving the centre
/// onto a VM-hosting node can only shed its own weight), and for ties the
/// paper notes the choice "does not impact the algorithm".
///
/// # Panics
/// Panics if matrix and topology node counts disagree or the topology is
/// empty.
pub fn cluster_distance(matrix: &ResourceMatrix, topo: &Topology) -> (u64, NodeId) {
    assert!(topo.num_nodes() > 0, "empty topology");
    let mut best = (u64::MAX, NodeId(0));
    for k in topo.node_ids() {
        let d = distance_with_center(matrix, topo, k);
        if d < best.0 {
            best = (d, k);
        }
    }
    best
}

/// The distance of the allocation from **every** candidate centre, indexed
/// by node id (the data behind the paper's Fig. 4).
pub fn distance_profile(matrix: &ResourceMatrix, topo: &Topology) -> Vec<u64> {
    topo.node_ids()
        .map(|k| distance_with_center(matrix, topo, k))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_topology::{generate, DistanceTiers};

    /// Fig. 1 of the paper: two racks; nodes 0–1 in rack 0, nodes 2–4 in
    /// rack 1. Request: 2·V1 + 4·V2 + 1·V3.
    fn fig1_topology() -> Topology {
        generate::heterogeneous(&[2, 3], DistanceTiers::paper_experiment())
    }

    #[test]
    fn worked_example_fig1() {
        let topo = fig1_topology();
        let d1 = u64::from(DistanceTiers::paper_experiment().same_rack);
        let d2 = u64::from(DistanceTiers::paper_experiment().cross_rack);

        // DC1: N0 = (2,2,0), N1 = (0,2,0), N2 = (0,0,1); centre N0 -> 2d1 + d2.
        let c1 = ResourceMatrix::from_rows(&[
            vec![2, 2, 0],
            vec![0, 2, 0],
            vec![0, 0, 1],
            vec![0, 0, 0],
            vec![0, 0, 0],
        ]);
        let (dc1, k1) = cluster_distance(&c1, &topo);
        assert_eq!(dc1, 2 * d1 + d2);
        assert_eq!(k1, NodeId(0));

        // DC3-style: everything split across two racks from the centre's
        // perspective: N0 = (2,2,1) with 2 VMs at N3 and 1 at N4 (cross rack).
        let c3 = ResourceMatrix::from_rows(&[
            vec![2, 2, 0],
            vec![0, 0, 0],
            vec![0, 0, 0],
            vec![0, 2, 0],
            vec![0, 0, 1],
        ]);
        let (dc3, _) = cluster_distance(&c3, &topo);
        // centre N0: 2 VMs at d2 + 1 VM at d2 = 3·d2? weights: N3 hosts 2, N4 hosts 1
        assert_eq!(dc3, 2 * d2 + d2);
    }

    #[test]
    fn all_on_one_node_distance_zero() {
        let topo = fig1_topology();
        let c = ResourceMatrix::from_rows(&[
            vec![5, 5, 5],
            vec![0, 0, 0],
            vec![0, 0, 0],
            vec![0, 0, 0],
            vec![0, 0, 0],
        ]);
        let (d, k) = cluster_distance(&c, &topo);
        assert_eq!(d, 0);
        assert_eq!(k, NodeId(0));
    }

    #[test]
    fn empty_allocation_distance_zero() {
        let topo = fig1_topology();
        let c = ResourceMatrix::zeros(5, 3);
        let (d, k) = cluster_distance(&c, &topo);
        assert_eq!(d, 0);
        assert_eq!(k, NodeId(0)); // smallest id wins ties
    }

    #[test]
    fn profile_matches_fixed_center() {
        let topo = fig1_topology();
        let c = ResourceMatrix::from_rows(&[
            vec![1, 0, 0],
            vec![1, 0, 0],
            vec![0, 0, 0],
            vec![1, 0, 0],
            vec![0, 0, 0],
        ]);
        let profile = distance_profile(&c, &topo);
        assert_eq!(profile.len(), 5);
        for (k, &d) in profile.iter().enumerate() {
            assert_eq!(d, distance_with_center(&c, &topo, NodeId::from_index(k)));
        }
        // centre inside rack 0 sees 1·d1 + 1·d2 = 3; centre N3 sees 2·d2 = 4 ... wait:
        // from N0: N1 at d1=1, N3 at d2=2 -> 3. From N3: N0,N1 at 2 each -> 4.
        assert_eq!(profile[0], 3);
        assert_eq!(profile[3], 4);
        let (best, k) = cluster_distance(&c, &topo);
        assert_eq!(best, *profile.iter().min().unwrap());
        assert_eq!(k, NodeId(0));
    }

    #[test]
    fn weight_scales_distance() {
        let topo = fig1_topology();
        let mut c = ResourceMatrix::zeros(5, 3);
        c.set(NodeId(0), vc_model::VmTypeId(0), 1);
        c.set(NodeId(3), vc_model::VmTypeId(0), 3);
        // centre N3: 1 VM at distance 2 -> 2. Centre N0: 3 VMs at 2 -> 6.
        assert_eq!(distance_with_center(&c, &topo, NodeId(3)), 2);
        assert_eq!(distance_with_center(&c, &topo, NodeId(0)), 6);
        let (d, k) = cluster_distance(&c, &topo);
        assert_eq!((d, k), (2, NodeId(3)));
    }

    #[test]
    #[should_panic(expected = "node counts disagree")]
    fn mismatched_dimensions_panic() {
        let topo = fig1_topology();
        let c = ResourceMatrix::zeros(3, 3);
        let _ = distance_with_center(&c, &topo, NodeId(0));
    }
}
