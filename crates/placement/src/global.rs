//! **Algorithm 2** — global sub-optimisation over a request queue (paper
//! §IV-B).
//!
//! 1. **Admission** ([`get_requests`]): collect the queue prefix the
//!    current resources can serve (FIFO, as the paper suggests; a
//!    skipping variant is provided for ablation).
//! 2. **Serve** each admitted request with Algorithm 1 against the
//!    evolving resource state.
//! 3. **Exchange** ([`suboptimize`]): for every pair of allocations with
//!    different central nodes, apply Theorem-2 VM swaps — cluster `a`
//!    trades a VM it holds on `b`'s centre for one of `b`'s same-type VMs
//!    on a node nearer `a`'s centre — until no improving swap remains.
//!    Each swap is capacity-neutral (per-node, per-type totals are
//!    unchanged) and strictly reduces the summed distance.

use crate::distance::distance_with_center;
use crate::online::{self, ScanConfig, ScanStats};
use crate::policy::PlacementError;
use vc_model::{Allocation, ClusterState, Request};
use vc_obs::{AttrValue, NoopRecorder, Recorder};
use vc_topology::Topology;

/// How [`get_requests`] walks the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Admission {
    /// Strict FIFO: stop at the first request that does not fit (the
    /// paper's default — later requests must not overtake).
    #[default]
    FifoBlocking,
    /// FIFO order, but requests that do not fit are skipped rather than
    /// blocking the queue (backfilling).
    FifoSkipping,
}

/// Which queue entries admission let through, and which it threw out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionDecision {
    /// Indices the current availability can serve, in FIFO order.
    pub admitted: Vec<usize>,
    /// Indices that can *never* be served — malformed type vectors or
    /// requests beyond total capacity. These used to stall a
    /// [`FifoBlocking`](Admission::FifoBlocking) queue forever; now they
    /// are rejected up front so traffic behind them keeps flowing.
    pub rejected: Vec<usize>,
}

/// The outcome of serving a queue.
#[derive(Debug, Clone)]
pub struct QueuePlacement {
    /// `(queue_index, allocation)` for each served request, in service
    /// order. Centres are as chosen by Algorithm 1; the Theorem-2 pass
    /// mutates matrices but never centres (per the paper).
    pub served: Vec<(usize, Allocation)>,
    /// Queue indices that could not be admitted this round.
    pub deferred: Vec<usize>,
    /// Queue indices rejected outright (malformed or over total
    /// capacity) — retrying them can never succeed.
    pub rejected: Vec<usize>,
    /// Per-served-allocation centre distance right after step 2 (aligned
    /// with [`served`](Self::served)).
    pub served_online_distances: Vec<u64>,
    /// Σ of per-allocation centre distances right after step 2.
    pub online_distance: u64,
    /// Σ of per-allocation centre distances after the Theorem-2 exchanges.
    pub optimized_distance: u64,
}

/// Step 1 of Algorithm 2: which queue entries can be served now?
///
/// Walks `queue` in order, tentatively reserving availability.
/// `FifoBlocking` stops at the first request that must *wait*;
/// `FifoSkipping` keeps scanning past it. Requests that can never be
/// served — wrong type-vector shape, or beyond total capacity `M` — are
/// rejected without blocking either mode: waiting cannot help them, and
/// letting one of them block a FIFO queue livelocks everything behind it.
pub fn get_requests(
    queue: &[Request],
    state: &ClusterState,
    admission: Admission,
) -> AdmissionDecision {
    let mut available = state.availability();
    let mut decision = AdmissionDecision {
        admitted: Vec::new(),
        rejected: Vec::new(),
    };
    for (idx, request) in queue.iter().enumerate() {
        if !state.fits_capacity(request) {
            decision.rejected.push(idx);
        } else if request.le(&available) {
            available.checked_sub_assign(request);
            decision.admitted.push(idx);
        } else if admission == Admission::FifoBlocking {
            break;
        }
    }
    decision
}

/// Steps 1–3 of Algorithm 2: admit, serve with Algorithm 1, then apply the
/// Theorem-2 exchange pass.
///
/// `state` is cloned internally; committing the returned allocations is
/// the caller's responsibility (the cloud simulator does it after deciding
/// service times).
pub fn place_queue(
    queue: &[Request],
    state: &ClusterState,
    admission: Admission,
) -> Result<QueuePlacement, PlacementError> {
    place_queue_recorded(
        queue,
        state,
        admission,
        ScanConfig::default(),
        &NoopRecorder,
        0,
    )
}

/// [`place_queue`] with an explicit [`ScanConfig`] for the Algorithm-1
/// seed scans (pruning / `--placement-threads` parallelism).
pub fn place_queue_with(
    queue: &[Request],
    state: &ClusterState,
    admission: Admission,
    scan: ScanConfig,
) -> Result<QueuePlacement, PlacementError> {
    place_queue_recorded(queue, state, admission, scan, &NoopRecorder, 0)
}

/// [`place_queue`] with observability: per-request placement events (with
/// chosen centre and `DC(C)`), per-request scan audits and per-worker
/// chunk events (via [`online::place_recorded`]), the `placement.dc`
/// histogram, seed-scan counters including aborts, the Theorem-2
/// exchange-pass counters, and a per-batch `placement.exchange_audit`
/// event all land on `rec`, timestamped `t_us`.
pub fn place_queue_recorded(
    queue: &[Request],
    state: &ClusterState,
    admission: Admission,
    scan: ScanConfig,
    rec: &dyn Recorder,
    t_us: u64,
) -> Result<QueuePlacement, PlacementError> {
    place_queue_impl(queue, state, admission, rec, t_us, &|request, working| {
        online::place_recorded(request, working, scan, rec, t_us)
            .map(|(allocation, audit)| (allocation, audit.stats))
    })
}

/// The Algorithm-1 entry point the queue drives: request × working state
/// → allocation + scan stats.
type SolveFn<'a> =
    dyn Fn(&Request, &ClusterState) -> Result<(Allocation, ScanStats), PlacementError> + 'a;

/// Solver-parameterised core so tests can inject a broken solver and
/// exercise the commit-failure path (Algorithm 1 itself never
/// over-commits).
fn place_queue_impl(
    queue: &[Request],
    state: &ClusterState,
    admission: Admission,
    rec: &dyn Recorder,
    t_us: u64,
    solver: &SolveFn<'_>,
) -> Result<QueuePlacement, PlacementError> {
    let decision = get_requests(queue, state, admission);
    let mut rejected = decision.rejected;
    let mut working = state.clone();
    let mut served = Vec::with_capacity(decision.admitted.len());
    for &idx in &decision.admitted {
        match solver(&queue[idx], &working) {
            // Seed-scan counters (scanned / pruned / aborted) are emitted
            // by the solver itself — see `online::place_recorded`.
            Ok((allocation, _stats)) => {
                // A broken solver must not take the whole run down: record
                // the failure and defer the request (it stays queued).
                match working.allocate(&allocation) {
                    Ok(()) => served.push((idx, allocation)),
                    Err(err) => {
                        rec.counter_add("placement.commit_failed", 1);
                        rec.event(
                            "placement.commit_failed",
                            t_us,
                            None,
                            &[
                                ("queue_index", AttrValue::from(idx)),
                                ("error", AttrValue::from(err.to_string())),
                            ],
                        );
                    }
                }
            }
            // Admission reserved availability, so these only fire on a
            // state/solver disagreement; classify like admission would.
            Err(PlacementError::Refused { .. } | PlacementError::Malformed { .. }) => {
                rejected.push(idx);
            }
            Err(PlacementError::Unsatisfiable { .. }) => {}
        }
    }
    rejected.sort_unstable();

    let topo = state.topology();
    let served_online_distances: Vec<u64> = served
        .iter()
        .map(|(_, a)| distance_with_center(a.matrix(), topo, a.center()))
        .collect();
    let online_distance = served_online_distances.iter().sum();

    let mut allocations: Vec<&mut Allocation> = served.iter_mut().map(|(_, a)| a).collect();
    let exchange_timer = vc_obs::PhaseTimer::start(rec, vc_obs::prof::EXCHANGE);
    let exchanges = suboptimize_stats(&mut allocations, topo);
    drop(exchange_timer);
    rec.counter_add("placement.exchange_swaps", exchanges.swaps);
    rec.counter_add("placement.exchange_saved", exchanges.saved);
    rec.counter_add("placement.exchange_passes", exchanges.passes);

    let optimized_distance: u64 = served
        .iter()
        .map(|(_, a)| {
            let d = distance_with_center(a.matrix(), topo, a.center());
            rec.histogram_record("placement.dc", d);
            d
        })
        .sum();
    if rec.enabled() && !served.is_empty() {
        rec.event(
            "placement.exchange_audit",
            t_us,
            None,
            &[
                ("batch_size", AttrValue::from(served.len() as u64)),
                ("passes", AttrValue::from(exchanges.passes)),
                ("swaps", AttrValue::from(exchanges.swaps)),
                ("saved", AttrValue::from(exchanges.saved)),
                ("online_distance", AttrValue::from(online_distance)),
                ("optimized_distance", AttrValue::from(optimized_distance)),
            ],
        );
    }
    for (idx, a) in &served {
        rec.event(
            "placement.request_placed",
            t_us,
            None,
            &[
                ("queue_index", AttrValue::from(*idx)),
                ("center", AttrValue::from(u64::from(a.center().0))),
                (
                    "dc",
                    AttrValue::from(distance_with_center(a.matrix(), topo, a.center())),
                ),
                ("span_nodes", AttrValue::from(a.span())),
            ],
        );
    }
    rec.counter_add("placement.requests_served", served.len() as u64);

    // deferred = everything neither served nor rejected, via an O(n) mask
    // (the old `admitted.contains` scan was quadratic in queue length).
    let mut settled = vec![false; queue.len()];
    for (idx, _) in &served {
        settled[*idx] = true;
    }
    for &idx in &rejected {
        settled[idx] = true;
    }
    let deferred: Vec<usize> = (0..queue.len()).filter(|&i| !settled[i]).collect();
    rec.counter_add("placement.requests_deferred", deferred.len() as u64);
    rec.counter_add("placement.requests_rejected", rejected.len() as u64);
    Ok(QueuePlacement {
        served,
        deferred,
        rejected,
        served_online_distances,
        online_distance,
        optimized_distance,
    })
}

/// What a [`suboptimize_stats`] run did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExchangeStats {
    /// Total distance reduction.
    pub saved: u64,
    /// Individual Theorem-2 VM swaps applied.
    pub swaps: u64,
    /// Full passes over all pairs (including the final no-progress pass).
    pub passes: u64,
}

/// Step 3 of Algorithm 2: repeatedly apply [`transfer`] to every pair of
/// allocations with distinct centres until a full pass makes no progress.
/// Returns the total distance reduction.
pub fn suboptimize(allocations: &mut [&mut Allocation], topo: &Topology) -> u64 {
    suboptimize_stats(allocations, topo).saved
}

/// [`suboptimize`], also reporting how many swaps and passes it took.
pub fn suboptimize_stats(allocations: &mut [&mut Allocation], topo: &Topology) -> ExchangeStats {
    let mut stats = ExchangeStats::default();
    loop {
        let mut pass_saved = 0u64;
        stats.passes += 1;
        for i in 0..allocations.len() {
            for j in (i + 1)..allocations.len() {
                if allocations[i].center() != allocations[j].center() {
                    let (left, right) = allocations.split_at_mut(j);
                    let (saved, swaps) = transfer_counted(left[i], right[0], topo);
                    pass_saved += saved;
                    stats.swaps += swaps;
                }
            }
        }
        stats.saved += pass_saved;
        if pass_saved == 0 {
            return stats;
        }
    }
}

/// The paper's `transfer` operation: apply every improving Theorem-2 swap
/// between clusters `a` and `b`, in both directions, until none remains.
/// Returns the distance reduction achieved.
///
/// A swap moves one VM of type `r` of cluster `a` **off** `b`'s centre
/// `N_y` onto a node `N_k` currently hosting one of `b`'s type-`r` VMs,
/// while `b` moves that VM onto its own centre `N_y`. It improves the sum
/// exactly when `D[x][y] + D[y][k] > D[x][k]` (`N_x` = `a`'s centre), and
/// is capacity-neutral because the per-node, per-type totals of `a + b`
/// are unchanged.
pub fn transfer(a: &mut Allocation, b: &mut Allocation, topo: &Topology) -> u64 {
    transfer_counted(a, b, topo).0
}

/// [`transfer`], also counting the swaps applied.
fn transfer_counted(a: &mut Allocation, b: &mut Allocation, topo: &Topology) -> (u64, u64) {
    let (mut saved, mut swaps) = (0u64, 0u64);
    loop {
        let (s1, n1) = transfer_one(a, b, topo);
        let (s2, n2) = transfer_one(b, a, topo);
        if s1 + s2 == 0 {
            return (saved, swaps);
        }
        saved += s1 + s2;
        swaps += n1 + n2;
    }
}

/// One directed sweep: move VMs of `mover` off `anchor`'s centre.
/// Returns `(distance saved, swaps applied)`.
fn transfer_one(mover: &mut Allocation, anchor: &mut Allocation, topo: &Topology) -> (u64, u64) {
    let x = mover.center();
    let y = anchor.center();
    if x == y {
        return (0, 0);
    }
    let m = mover.matrix().num_types();
    let (mut saved, mut swaps) = (0u64, 0u64);
    for j in 0..m {
        let ty = vc_model::VmTypeId::from_index(j);
        // While the mover holds a type-j VM on the anchor's centre…
        while mover.matrix().get(y, ty) > 0 {
            // …find the anchor's type-j VM whose node gives the best
            // improvement for the mover.
            let d_xy = u64::from(topo.distance(x, y));
            let candidate = topo
                .node_ids()
                .filter(|&k| k != y && anchor.matrix().get(k, ty) > 0)
                .map(|k| {
                    let gain = (d_xy + u64::from(topo.distance(y, k)))
                        .saturating_sub(u64::from(topo.distance(x, k)));
                    (gain, k)
                })
                .filter(|&(gain, _)| gain > 0)
                .max_by_key(|&(gain, k)| (gain, std::cmp::Reverse(k)));
            let Some((gain, k)) = candidate else { break };
            mover.matrix_mut().sub(y, ty, 1);
            mover.matrix_mut().add(k, ty, 1);
            anchor.matrix_mut().sub(k, ty, 1);
            anchor.matrix_mut().add(y, ty, 1);
            saved += gain;
            swaps += 1;
        }
    }
    (saved, swaps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vc_model::{ResourceMatrix, VmCatalog, VmTypeId};
    use vc_topology::{generate, DistanceTiers, NodeId};

    fn state(rows: &[Vec<u32>], racks: &[usize]) -> ClusterState {
        let topo = Arc::new(generate::heterogeneous(
            racks,
            DistanceTiers::paper_experiment(),
        ));
        let cat = Arc::new(VmCatalog::ec2_table1());
        ClusterState::new(topo, cat, ResourceMatrix::from_rows(rows))
    }

    #[test]
    fn fifo_blocking_stops_at_first_miss() {
        let s = state(&[vec![2, 0, 0], vec![2, 0, 0]], &[2]);
        let queue = vec![
            Request::from_counts(vec![3, 0, 0]),
            Request::from_counts(vec![4, 0, 0]), // fits M, but only 1 left now
            Request::from_counts(vec![1, 0, 0]), // would fit, but blocked
        ];
        let blocking = get_requests(&queue, &s, Admission::FifoBlocking);
        assert_eq!(blocking.admitted, vec![0]);
        assert!(blocking.rejected.is_empty());
        let skipping = get_requests(&queue, &s, Admission::FifoSkipping);
        assert_eq!(skipping.admitted, vec![0, 2]);
        assert!(skipping.rejected.is_empty());
    }

    #[test]
    fn admission_respects_running_availability() {
        let s = state(&[vec![2, 0, 0], vec![2, 0, 0]], &[2]);
        let queue = vec![
            Request::from_counts(vec![3, 0, 0]),
            Request::from_counts(vec![2, 0, 0]), // only 1 left
        ];
        assert_eq!(
            get_requests(&queue, &s, Admission::FifoSkipping).admitted,
            vec![0]
        );
    }

    #[test]
    fn malformed_request_mid_queue_no_longer_stalls_fifo() {
        // Regression: a request with the wrong number of VM types used to
        // block a FifoBlocking queue forever — it could never be admitted
        // (shape mismatch) and never got refused, so everything behind it
        // starved. It must be rejected up front with later traffic served.
        let s = state(&[vec![2, 0, 0], vec![2, 0, 0]], &[2]);
        let queue = vec![
            Request::from_counts(vec![1, 0, 0]),
            Request::from_counts(vec![1, 1]), // malformed: 2 types, catalogue has 3
            Request::from_counts(vec![1, 0, 0]),
        ];
        let decision = get_requests(&queue, &s, Admission::FifoBlocking);
        assert_eq!(decision.admitted, vec![0, 2]);
        assert_eq!(decision.rejected, vec![1]);

        let out = place_queue(&queue, &s, Admission::FifoBlocking).unwrap();
        assert_eq!(
            out.served.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert_eq!(out.rejected, vec![1]);
        assert!(out.deferred.is_empty());
    }

    #[test]
    fn over_capacity_request_mid_queue_rejected_not_blocking() {
        let s = state(&[vec![2, 0, 0], vec![2, 0, 0]], &[2]);
        let queue = vec![
            Request::from_counts(vec![1, 0, 0]),
            Request::from_counts(vec![9, 0, 0]), // beyond total capacity M
            Request::from_counts(vec![1, 0, 0]),
        ];
        let decision = get_requests(&queue, &s, Admission::FifoBlocking);
        assert_eq!(decision.admitted, vec![0, 2]);
        assert_eq!(decision.rejected, vec![1]);
    }

    #[test]
    fn commit_failure_defers_instead_of_panicking() {
        use vc_obs::MemRecorder;
        // Inject a solver that over-commits node 0 — place_queue must
        // survive, record the failure, and leave the request deferred.
        let s = state(&[vec![2, 0, 0], vec![2, 0, 0]], &[2]);
        let queue = vec![
            Request::from_counts(vec![1, 0, 0]),
            Request::from_counts(vec![2, 0, 0]),
        ];
        let rec = MemRecorder::new();
        let broken: &super::SolveFn<'_> = &|req, working| {
            if req == &queue[1] {
                // Claims 9 slots on node 0 — more than it has.
                let mut m = ResourceMatrix::zeros(working.num_nodes(), working.num_types());
                m.set(NodeId(0), VmTypeId(0), 9);
                Ok((Allocation::new(m, NodeId(0)), online::ScanStats::default()))
            } else {
                online::place_with(req, working, online::ScanConfig::default())
            }
        };
        let out = place_queue_impl(&queue, &s, Admission::FifoBlocking, &rec, 7, broken).unwrap();
        assert_eq!(
            out.served.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![0]
        );
        assert_eq!(out.deferred, vec![1]);
        assert!(out.rejected.is_empty());
        let snap = rec.metrics();
        assert_eq!(snap.counters["placement.commit_failed"], 1);
        assert!(rec
            .events()
            .iter()
            .any(|e| e.name == "placement.commit_failed" && e.t_us == 7));
    }

    #[test]
    fn queue_scan_configs_agree() {
        let s = state(
            &[vec![2, 2, 2], vec![2, 2, 2], vec![2, 2, 2], vec![2, 2, 2]],
            &[2, 2],
        );
        let queue = vec![
            Request::from_counts(vec![3, 1, 0]),
            Request::from_counts(vec![1, 2, 1]),
            Request::from_counts(vec![4, 4, 4]),
        ];
        let base = place_queue_with(
            &queue,
            &s,
            Admission::FifoSkipping,
            online::ScanConfig::sequential_baseline(),
        )
        .unwrap();
        for scan in [
            online::ScanConfig::pruned(),
            online::ScanConfig::pruned_parallel(2),
        ] {
            let out = place_queue_with(&queue, &s, Admission::FifoSkipping, scan).unwrap();
            assert_eq!(out.deferred, base.deferred);
            assert_eq!(out.rejected, base.rejected);
            assert_eq!(out.served.len(), base.served.len());
            for ((i1, a1), (i2, a2)) in out.served.iter().zip(base.served.iter()) {
                assert_eq!(i1, i2);
                assert_eq!(a1.matrix(), a2.matrix());
                assert_eq!(a1.center(), a2.center());
            }
        }
    }

    #[test]
    fn place_queue_serves_and_accounts() {
        let s = state(
            &[vec![2, 2, 2], vec![2, 2, 2], vec![2, 2, 2], vec![2, 2, 2]],
            &[2, 2],
        );
        let queue = vec![
            Request::from_counts(vec![2, 1, 0]),
            Request::from_counts(vec![1, 1, 1]),
        ];
        let out = place_queue(&queue, &s, Admission::FifoBlocking).unwrap();
        assert_eq!(out.served.len(), 2);
        assert!(out.deferred.is_empty());
        assert!(out.optimized_distance <= out.online_distance);
        for (idx, alloc) in &out.served {
            assert!(alloc.satisfies(&queue[*idx]));
        }
        // Combined allocations respect capacity.
        let mut check = s.clone();
        for (_, alloc) in &out.served {
            check.allocate(alloc).unwrap();
        }
    }

    #[test]
    fn transfer_improves_crafted_pair() {
        // Topology: rack0 = {0,1}, rack1 = {2,3}. Cluster A centred at 0
        // holds a VM on node 2 (cross-rack, d=2); cluster B centred at 2
        // holds a VM on node 1 (cross-rack from 2).
        let topo = generate::heterogeneous(&[2, 2], DistanceTiers::paper_experiment());
        let mut a = Allocation::new(
            ResourceMatrix::from_rows(&[vec![1], vec![0], vec![1], vec![0]]),
            NodeId(0),
        );
        let mut b = Allocation::new(
            ResourceMatrix::from_rows(&[vec![0], vec![1], vec![1], vec![0]]),
            NodeId(2),
        );
        let before = distance_with_center(a.matrix(), &topo, a.center())
            + distance_with_center(b.matrix(), &topo, b.center());
        let saved = transfer(&mut a, &mut b, &topo);
        let after = distance_with_center(a.matrix(), &topo, a.center())
            + distance_with_center(b.matrix(), &topo, b.center());
        assert_eq!(before - after, saved);
        assert!(saved > 0, "crafted swap should improve");
        // A's stray VM moved onto node 1 (same rack as its centre); B's onto
        // its own centre.
        assert_eq!(a.matrix().get(NodeId(1), VmTypeId(0)), 1);
        assert_eq!(a.matrix().get(NodeId(2), VmTypeId(0)), 0);
        assert_eq!(b.matrix().get(NodeId(2), VmTypeId(0)), 2);
    }

    #[test]
    fn transfer_is_capacity_neutral() {
        let topo = generate::heterogeneous(&[2, 2], DistanceTiers::paper_experiment());
        let mut a = Allocation::new(
            ResourceMatrix::from_rows(&[vec![1], vec![0], vec![1], vec![0]]),
            NodeId(0),
        );
        let mut b = Allocation::new(
            ResourceMatrix::from_rows(&[vec![0], vec![1], vec![1], vec![0]]),
            NodeId(2),
        );
        let mut combined_before = a.matrix().clone();
        combined_before.checked_add_assign(b.matrix());
        let _ = transfer(&mut a, &mut b, &topo);
        let mut combined_after = a.matrix().clone();
        combined_after.checked_add_assign(b.matrix());
        assert_eq!(combined_before, combined_after);
    }

    #[test]
    fn transfer_preserves_request_sizes() {
        let topo = generate::heterogeneous(&[2, 2], DistanceTiers::paper_experiment());
        let mut a = Allocation::new(
            ResourceMatrix::from_rows(&[vec![2], vec![0], vec![1], vec![0]]),
            NodeId(0),
        );
        let mut b = Allocation::new(
            ResourceMatrix::from_rows(&[vec![0], vec![1], vec![2], vec![0]]),
            NodeId(2),
        );
        let (ta, tb) = (a.total_vms(), b.total_vms());
        let _ = transfer(&mut a, &mut b, &topo);
        assert_eq!(a.total_vms(), ta);
        assert_eq!(b.total_vms(), tb);
    }

    #[test]
    fn same_center_pairs_untouched() {
        let topo = generate::heterogeneous(&[2, 2], DistanceTiers::paper_experiment());
        let mut a = Allocation::new(
            ResourceMatrix::from_rows(&[vec![1], vec![0], vec![1], vec![0]]),
            NodeId(0),
        );
        let mut b = a.clone();
        let before = (a.clone(), b.clone());
        assert_eq!(transfer(&mut a, &mut b, &topo), 0);
        assert_eq!((a, b), before);
    }

    #[test]
    fn recorded_queue_placement_reports_exchanges() {
        use vc_obs::MemRecorder;
        let s = state(
            &[vec![2, 2, 2], vec![2, 2, 2], vec![2, 2, 2], vec![2, 2, 2]],
            &[2, 2],
        );
        let queue = vec![
            Request::from_counts(vec![2, 1, 0]),
            Request::from_counts(vec![1, 1, 1]),
        ];
        let rec = MemRecorder::new();
        let out = place_queue_recorded(
            &queue,
            &s,
            Admission::FifoBlocking,
            ScanConfig::default(),
            &rec,
            42,
        )
        .unwrap();
        let plain = place_queue(&queue, &s, Admission::FifoBlocking).unwrap();
        assert_eq!(out.optimized_distance, plain.optimized_distance);

        let snap = rec.metrics();
        assert_eq!(snap.counters["placement.requests_served"], 2);
        assert_eq!(snap.counters["placement.requests_deferred"], 0);
        assert!(snap.counters["placement.exchange_passes"] >= 1);
        assert_eq!(snap.histograms["placement.dc"].count, 2);
        let events = rec.events();
        let placed: Vec<_> = events
            .iter()
            .filter(|e| e.name == "placement.request_placed")
            .collect();
        assert_eq!(placed.len(), 2);
        assert!(placed.iter().all(|e| e.t_us == 42));
        assert!(placed
            .iter()
            .all(|e| e.attrs.iter().any(|(k, _)| *k == "center")
                && e.attrs.iter().any(|(k, _)| *k == "dc")));
    }

    /// Acceptance check for the sharded recorder: a parallel-scan queue
    /// run recorded through a `ShardedRecorder` produces the same set of
    /// placement events and counters as a single-threaded run on a
    /// `MemRecorder` — order-insensitive. Pruning is disabled so the
    /// scanned/pruned/aborted split is deterministic regardless of
    /// cross-thread timing; per-worker `placement.scan_chunk` events and
    /// the `workers` attribute of scan audits are the only intentional
    /// differences, so they are excluded from the comparison.
    #[test]
    fn sharded_parallel_queue_matches_sequential_mem() {
        use vc_obs::{MemRecorder, ShardedRecorder};
        // Capacity-1 nodes so every request spans nodes (no distance-0
        // fast path) and the seed scan actually runs.
        let s = state(&vec![vec![1, 1, 1]; 6], &[3, 3]);
        let queue = vec![
            Request::from_counts(vec![2, 1, 0]),
            Request::from_counts(vec![1, 1, 1]),
            Request::from_counts(vec![0, 2, 1]),
        ];
        let unpruned = |parallelism| ScanConfig {
            prune: false,
            parallelism,
        };

        let mem = MemRecorder::new();
        let seq = place_queue_recorded(
            &queue,
            &s,
            Admission::FifoBlocking,
            unpruned(crate::online::Parallelism::Sequential),
            &mem,
            7,
        )
        .unwrap();

        let sharded = ShardedRecorder::new();
        let par = place_queue_recorded(
            &queue,
            &s,
            Admission::FifoBlocking,
            unpruned(crate::online::Parallelism::Threads(3)),
            &sharded,
            7,
        )
        .unwrap();
        let merged = sharded.merged();

        assert_eq!(seq.optimized_distance, par.optimized_distance);
        // Phase wall-clock counters are host time, not simulation state —
        // the only intentionally non-deterministic metrics. Everything
        // else must match exactly.
        let strip_wall = |mut m: vc_obs::MetricsSnapshot| {
            m.counters
                .retain(|k, _| !(k.starts_with("prof.phase.") && k.ends_with(".wall_us")));
            m
        };
        assert_eq!(strip_wall(mem.metrics()), strip_wall(merged.metrics));

        // Event sets match once worker-granularity artifacts are removed:
        // chunk events entirely, and the `workers` attr of scan audits.
        let canonical = |events: &[vc_obs::EventRecord]| -> Vec<String> {
            let mut keys: Vec<String> = events
                .iter()
                .filter(|e| e.name != "placement.scan_chunk")
                .map(|e| {
                    let attrs: Vec<_> = e.attrs.iter().filter(|(k, _)| *k != "workers").collect();
                    format!("{} @{} {:?}", e.name, e.t_us, attrs)
                })
                .collect();
            keys.sort();
            keys
        };
        assert_eq!(canonical(&mem.events()), canonical(&merged.events));
        assert!(merged
            .events
            .iter()
            .any(|e| e.name == "placement.scan_chunk"));
    }

    #[test]
    fn exchange_stats_consistent_with_distance_drop() {
        let topo = generate::heterogeneous(&[2, 2], DistanceTiers::paper_experiment());
        let mut a = Allocation::new(
            ResourceMatrix::from_rows(&[vec![1], vec![0], vec![1], vec![0]]),
            NodeId(0),
        );
        let mut b = Allocation::new(
            ResourceMatrix::from_rows(&[vec![0], vec![1], vec![1], vec![0]]),
            NodeId(2),
        );
        let before = distance_with_center(a.matrix(), &topo, a.center())
            + distance_with_center(b.matrix(), &topo, b.center());
        let mut allocs: Vec<&mut Allocation> = vec![&mut a, &mut b];
        let stats = suboptimize_stats(&mut allocs, &topo);
        let after = distance_with_center(a.matrix(), &topo, a.center())
            + distance_with_center(b.matrix(), &topo, b.center());
        assert_eq!(stats.saved, before - after);
        assert!(stats.swaps >= 1);
        assert!(stats.passes >= 2, "must include the final no-progress pass");
    }

    #[test]
    fn suboptimize_never_increases_total() {
        let s = state(
            &[
                vec![1, 1, 1],
                vec![1, 1, 1],
                vec![1, 1, 1],
                vec![1, 1, 1],
                vec![1, 1, 1],
                vec![1, 1, 1],
            ],
            &[3, 3],
        );
        let queue = vec![
            Request::from_counts(vec![2, 1, 0]),
            Request::from_counts(vec![1, 2, 0]),
            Request::from_counts(vec![0, 0, 2]),
        ];
        let out = place_queue(&queue, &s, Admission::FifoBlocking).unwrap();
        assert!(out.optimized_distance <= out.online_distance);
    }
}
