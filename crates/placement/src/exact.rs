//! Exact Shortest-Distance solvers.
//!
//! **Fixed-centre decomposition.** For a fixed centre `N_k` the SD
//! objective is `Σ_i w_i · D_ik` with `w_i = Σ_j x_ij`: every VM placed on
//! node `i` costs `D_ik` *regardless of its type*, and the only coupling
//! between types is that each `(i, j)` cell is capped by `L_ij`
//! independently. The problem therefore decomposes per type into a
//! single-echelon transportation fill whose greedy solution — satisfy
//! `R_j` from nodes in ascending `D_ik` order — is optimal (an exchange
//! argument: moving a VM from a nearer node to a farther one can only
//! increase the objective; this is exactly the paper's Theorem 1).
//! Minimising over all `n` candidate centres yields the global optimum in
//! `O(n² (m + log n))`.
//!
//! [`solve_brute`] enumerates *every* feasible allocation and is
//! exponential — it exists purely to cross-validate the other solvers on
//! tiny instances.

use crate::distance::{cluster_distance, distance_with_center};
use crate::policy::{PlacementError, PlacementPolicy};
use vc_model::{Allocation, ClusterState, Request, ResourceMatrix, VmTypeId};
use vc_topology::NodeId;

/// Solve the SD problem exactly via the fixed-centre decomposition.
///
/// Returns the allocation with minimal `DC` (ties broken towards the
/// smaller centre id), or an error if the request cannot be satisfied.
pub fn solve(request: &Request, state: &ClusterState) -> Result<Allocation, PlacementError> {
    crate::policy::check_admissible(request, state)?;
    let topo = state.topology();
    let remaining = state.remaining();
    let mut best: Option<(u64, Allocation)> = None;

    for center in topo.node_ids() {
        let order = topo.nodes_by_distance(center);
        let mut matrix = ResourceMatrix::zeros(state.num_nodes(), state.num_types());
        let mut satisfied = true;
        for j in 0..state.num_types() {
            let ty = VmTypeId::from_index(j);
            let mut need = request.get(ty);
            for &node in &order {
                if need == 0 {
                    break;
                }
                let take = need.min(remaining.get(node, ty));
                if take > 0 {
                    matrix.set(node, ty, take);
                    need -= take;
                }
            }
            if need > 0 {
                satisfied = false;
                break;
            }
        }
        if !satisfied {
            continue;
        }
        let d = distance_with_center(&matrix, topo, center);
        if best.as_ref().is_none_or(|(bd, _)| d < *bd) {
            best = Some((d, Allocation::new(matrix, center)));
        }
    }

    best.map(|(_, a)| a)
        .ok_or_else(|| PlacementError::Unsatisfiable {
            request: request.clone(),
        })
}

/// The optimal distance value `SD(R)` alone.
pub fn shortest_distance(request: &Request, state: &ClusterState) -> Result<u64, PlacementError> {
    let alloc = solve(request, state)?;
    Ok(distance_with_center(
        alloc.matrix(),
        state.topology(),
        alloc.center(),
    ))
}

/// Exhaustively enumerate all feasible allocations and return one with
/// minimal `DC` (recomputing the optimal centre for each).
///
/// Exponential in nodes × types × counts — use only on tiny instances
/// (guarded by an internal work limit).
///
/// # Panics
/// Panics if the enumeration would exceed ~10⁷ visited states; this solver
/// is for cross-validation on toy instances only.
pub fn solve_brute(request: &Request, state: &ClusterState) -> Result<Allocation, PlacementError> {
    crate::policy::check_admissible(request, state)?;
    let remaining = state.remaining();
    let n = state.num_nodes();
    let m = state.num_types();

    struct Ctx<'a> {
        remaining: &'a ResourceMatrix,
        state: &'a ClusterState,
        request: &'a Request,
        n: usize,
        m: usize,
        matrix: ResourceMatrix,
        best: Option<(u64, ResourceMatrix, NodeId)>,
        visited: u64,
    }

    /// Distribute `need` remaining VMs of type `ty` over nodes `node..n`,
    /// then advance to the next type; evaluate complete allocations.
    fn recurse(ctx: &mut Ctx<'_>, ty: usize, node: usize, need: u32) {
        ctx.visited += 1;
        assert!(
            ctx.visited < 10_000_000,
            "brute-force enumeration too large"
        );
        if need == 0 {
            let next = ty + 1;
            if next == ctx.m {
                let (d, k) = cluster_distance(&ctx.matrix, ctx.state.topology());
                if ctx.best.as_ref().is_none_or(|(bd, _, _)| d < *bd) {
                    ctx.best = Some((d, ctx.matrix.clone(), k));
                }
            } else {
                let next_need = ctx.request.get(VmTypeId::from_index(next));
                recurse(ctx, next, 0, next_need);
            }
            return;
        }
        if node == ctx.n {
            return; // type unsatisfied along this path
        }
        let nid = NodeId::from_index(node);
        let tyid = VmTypeId::from_index(ty);
        let cap = ctx.remaining.get(nid, tyid).min(need);
        for take in (0..=cap).rev() {
            if take > 0 {
                ctx.matrix.set(nid, tyid, take);
            }
            recurse(ctx, ty, node + 1, need - take);
            ctx.matrix.set(nid, tyid, 0);
        }
    }

    let mut ctx = Ctx {
        remaining,
        state,
        request,
        n,
        m,
        matrix: ResourceMatrix::zeros(n, m),
        best: None,
        visited: 0,
    };
    let first_need = request.get(VmTypeId(0));
    recurse(&mut ctx, 0, 0, first_need);

    ctx.best
        .map(|(_, matrix, k)| Allocation::new(matrix, k))
        .ok_or_else(|| PlacementError::Unsatisfiable {
            request: request.clone(),
        })
}

/// [`PlacementPolicy`] wrapper around the exact solver.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactSd;

impl PlacementPolicy for ExactSd {
    fn name(&self) -> &'static str {
        "exact-sd"
    }

    fn place(
        &self,
        request: &Request,
        state: &ClusterState,
        _rng: &mut dyn rand::RngCore,
    ) -> Result<Allocation, PlacementError> {
        solve(request, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vc_model::VmCatalog;
    use vc_topology::{generate, DistanceTiers};

    fn small_state(capacity_rows: &[Vec<u32>]) -> ClusterState {
        let racks = if capacity_rows.len() >= 4 {
            vec![2, capacity_rows.len() - 2]
        } else {
            vec![capacity_rows.len()]
        };
        let topo = Arc::new(generate::heterogeneous(
            &racks,
            DistanceTiers::paper_experiment(),
        ));
        let cat = Arc::new(VmCatalog::ec2_table1());
        ClusterState::new(topo, cat, ResourceMatrix::from_rows(capacity_rows))
    }

    #[test]
    fn prefers_single_node() {
        let state = small_state(&[vec![1, 1, 1], vec![5, 5, 5], vec![1, 1, 1], vec![1, 1, 1]]);
        let req = Request::from_counts(vec![2, 2, 1]);
        let alloc = solve(&req, &state).unwrap();
        assert!(alloc.satisfies(&req));
        assert_eq!(alloc.span(), 1);
        assert_eq!(alloc.center(), NodeId(1));
        assert_eq!(shortest_distance(&req, &state).unwrap(), 0);
    }

    #[test]
    fn prefers_same_rack_over_cross_rack() {
        // Nodes 0,1 in rack 0; nodes 2,3 in rack 1.
        let state = small_state(&[vec![2, 0, 0], vec![2, 0, 0], vec![3, 0, 0], vec![1, 0, 0]]);
        let req = Request::from_counts(vec![4, 0, 0]);
        let alloc = solve(&req, &state).unwrap();
        assert!(alloc.satisfies(&req));
        let d = distance_with_center(alloc.matrix(), state.topology(), alloc.center());
        // best: 2+2 in rack 0 -> 2·d1 = 2, or 3+1 in rack 1 -> 1·d1? wait:
        // rack1: node2 provides 3, node3 provides 1 -> centre node2: 1·d1 = 1.
        assert_eq!(d, 1);
        assert_eq!(alloc.center(), NodeId(2));
    }

    #[test]
    fn brute_matches_exact_on_small_instances() {
        let state = small_state(&[vec![1, 1, 0], vec![2, 0, 1], vec![1, 2, 0], vec![0, 1, 1]]);
        for req in [
            Request::from_counts(vec![2, 1, 1]),
            Request::from_counts(vec![1, 0, 0]),
            Request::from_counts(vec![3, 2, 0]),
            Request::from_counts(vec![4, 4, 2]),
        ] {
            let exact = solve(&req, &state);
            let brute = solve_brute(&req, &state);
            match (exact, brute) {
                (Ok(e), Ok(b)) => {
                    let de = distance_with_center(e.matrix(), state.topology(), e.center());
                    let db = distance_with_center(b.matrix(), state.topology(), b.center());
                    assert_eq!(de, db, "request {req}");
                    assert!(e.satisfies(&req) && b.satisfies(&req));
                }
                (Err(_), Err(_)) => {}
                (e, b) => panic!("solver disagreement for {req}: exact={e:?} brute={b:?}"),
            }
        }
    }

    #[test]
    fn over_capacity_refused() {
        let state = small_state(&[vec![1, 0, 0], vec![0, 0, 0], vec![0, 0, 0], vec![0, 0, 0]]);
        let req = Request::from_counts(vec![2, 0, 0]);
        assert!(matches!(
            solve(&req, &state),
            Err(PlacementError::Refused { .. })
        ));
        assert!(matches!(
            solve_brute(&req, &state),
            Err(PlacementError::Refused { .. })
        ));
    }

    #[test]
    fn busy_cloud_unsatisfiable() {
        let mut state = small_state(&[vec![1, 0, 0], vec![1, 0, 0], vec![0, 0, 0], vec![0, 0, 0]]);
        let req = Request::from_counts(vec![2, 0, 0]);
        // Occupy one slot so only one remains.
        let first = solve(&Request::from_counts(vec![1, 0, 0]), &state).unwrap();
        state.allocate(&first).unwrap();
        assert!(matches!(
            solve(&req, &state),
            Err(PlacementError::Unsatisfiable { .. })
        ));
        assert!(matches!(
            solve_brute(&req, &state),
            Err(PlacementError::Unsatisfiable { .. })
        ));
    }

    #[test]
    fn policy_trait_name() {
        let p = ExactSd;
        assert_eq!(p.name(), "exact-sd");
    }
}
