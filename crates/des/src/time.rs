//! Simulation time: integer microseconds.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or duration of) simulated time, in whole microseconds.
///
/// Arithmetic is checked: overflow and negative durations panic rather
/// than wrap, since either indicates a simulation bug.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero / the empty duration.
    pub const ZERO: SimTime = SimTime(0);
    /// The farthest representable time.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Self(us)
    }

    /// From whole milliseconds.
    ///
    /// # Panics
    /// Panics on overflow.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        match ms.checked_mul(1_000) {
            Some(us) => Self(us),
            None => panic!("SimTime overflow"),
        }
    }

    /// From whole seconds.
    ///
    /// # Panics
    /// Panics on overflow.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        match s.checked_mul(1_000_000) {
            Some(us) => Self(us),
            None => panic!("SimTime overflow"),
        }
    }

    /// From fractional seconds, rounding to the nearest microsecond.
    ///
    /// # Panics
    /// Panics if `s` is negative, NaN, or too large.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        let us = (s * 1e6).round();
        assert!(us <= u64::MAX as f64, "SimTime overflow");
        Self(us as u64)
    }

    /// Whole microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds (lossy for very large times).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional milliseconds (lossy for very large times).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction (`0` floor), for elapsed-time calculations
    /// where clock skew is acceptable.
    #[inline]
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, rhs: Self) -> Option<Self> {
        self.0.checked_add(rhs.0).map(Self)
    }
}

impl std::ops::Mul<u64> for SimTime {
    type Output = SimTime;
    /// Scale a duration by an integer factor.
    ///
    /// # Panics
    /// Panics on overflow.
    #[inline]
    fn mul(self, factor: u64) -> Self {
        Self(self.0.checked_mul(factor).expect("SimTime overflow"))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    /// Panics if `rhs > self` (negative durations are bugs).
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}µs", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(7).as_micros(), 7);
        assert_eq!(SimTime::from_secs_f64(0.5).as_micros(), 500_000);
        assert!((SimTime::from_secs(2).as_secs_f64() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(4);
        assert_eq!(a + b, SimTime::from_millis(14));
        assert_eq!(a - b, SimTime::from_millis(6));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(b * 3, SimTime::from_millis(12));
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_millis(14));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn negative_duration_panics() {
        let _ = SimTime::from_micros(1) - SimTime::from_micros(2);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let _ = SimTime::MAX + SimTime::from_micros(1);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_seconds_rejected() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime::from_micros(12).to_string(), "12µs");
        assert_eq!(SimTime::from_micros(2_500).to_string(), "2.500ms");
        assert_eq!(SimTime::from_micros(1_250_000).to_string(), "1.250s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }
}
