//! The event queue / clock.

use crate::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use vc_obs::Recorder;

/// Events that can name their own variant for per-type counters.
///
/// Labels double as metric names, so pick stable dotted identifiers
/// (`"mr.event.map_cpu_done"`), not `Debug` output.
pub trait EventKind {
    /// A stable, static label for this event's variant.
    fn kind(&self) -> &'static str;
}

/// A future event: ordered by `(time, sequence)` so simultaneous events
/// dequeue in the order they were scheduled.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A discrete-event engine: a clock plus a pending-event queue.
///
/// The caller drives the main loop:
///
/// ```
/// # use vc_des::{Engine, SimTime};
/// let mut engine: Engine<u32> = Engine::new();
/// engine.schedule_after(SimTime::from_millis(1), 42);
/// while let Some((now, event)) = engine.pop() {
///     // handle `event`, possibly calling engine.schedule(...)
///     # let _ = (now, event);
/// }
/// ```
#[derive(Debug)]
pub struct Engine<E> {
    now: SimTime,
    seq: u64,
    processed: u64,
    heap: BinaryHeap<Reverse<Entry<E>>>,
}

impl<E> std::fmt::Debug for Entry<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Entry")
            .field("at", &self.at)
            .field("seq", &self.seq)
            .finish()
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// A fresh engine at time zero with no pending events.
    pub fn new() -> Self {
        Self {
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events handed out so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — time travel is a simulation bug.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < now {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Schedule `event` after a delay relative to the current time.
    pub fn schedule_after(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Remove and return the earliest pending event, advancing the clock
    /// to its timestamp. `None` when the queue is drained.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        self.processed += 1;
        Some((entry.at, entry.event))
    }

    /// [`Engine::pop`] plus bookkeeping into a [`Recorder`]: counts the
    /// event under `des.events_processed` and its [`EventKind`] label, and
    /// samples the post-pop heap depth into the `des.heap_depth`
    /// histogram. With a `NoopRecorder` this monomorphizes to `pop`.
    pub fn pop_traced<R: Recorder>(&mut self, rec: &R) -> Option<(SimTime, E)>
    where
        E: EventKind,
    {
        let (at, event) = self.pop()?;
        rec.counter_add("des.events_processed", 1);
        rec.counter_add(event.kind(), 1);
        rec.histogram_record("des.heap_depth", self.heap.len() as u64);
        Some((at, event))
    }

    /// Timestamp of the earliest pending event, if any, without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop every pending event (e.g. on simulation abort).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut e = Engine::new();
        e.schedule(SimTime::from_micros(30), "c");
        e.schedule(SimTime::from_micros(10), "a");
        e.schedule(SimTime::from_micros(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| e.pop()).map(|(_, ev)| ev).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(e.now(), SimTime::from_micros(30));
        assert_eq!(e.events_processed(), 3);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut e = Engine::new();
        let t = SimTime::from_micros(5);
        for i in 0..10 {
            e.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| e.pop()).map(|(_, ev)| ev).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut e = Engine::new();
        e.schedule(SimTime::from_micros(100), ());
        e.pop().unwrap();
        e.schedule_after(SimTime::from_micros(50), ());
        assert_eq!(e.peek_time(), Some(SimTime::from_micros(150)));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn past_scheduling_panics() {
        let mut e = Engine::new();
        e.schedule(SimTime::from_micros(10), ());
        e.pop().unwrap();
        e.schedule(SimTime::from_micros(5), ());
    }

    #[test]
    fn len_empty_clear() {
        let mut e: Engine<u8> = Engine::default();
        assert!(e.is_empty());
        e.schedule(SimTime::from_micros(1), 1);
        e.schedule(SimTime::from_micros(2), 2);
        assert_eq!(e.len(), 2);
        e.clear();
        assert!(e.is_empty());
        assert_eq!(e.pop(), None);
    }

    // The test events name their own kind.
    impl EventKind for &'static str {
        fn kind(&self) -> &'static str {
            self
        }
    }

    #[test]
    fn pop_traced_counts_kinds_and_depth() {
        use vc_obs::MemRecorder;

        let rec = MemRecorder::new();
        let mut e = Engine::new();
        e.schedule(SimTime::from_micros(1), "des.event.a");
        e.schedule(SimTime::from_micros(2), "des.event.b");
        e.schedule(SimTime::from_micros(3), "des.event.a");
        while e.pop_traced(&rec).is_some() {}
        let m = rec.metrics();
        assert_eq!(m.counters["des.events_processed"], 3);
        assert_eq!(m.counters["des.event.a"], 2);
        assert_eq!(m.counters["des.event.b"], 1);
        assert_eq!(m.histograms["des.heap_depth"].count, 3);
        assert_eq!(m.histograms["des.heap_depth"].max, 2);
    }

    #[test]
    fn pop_traced_preserves_fifo_ties() {
        // The instrumented pop must not disturb the (time, seq) order
        // guarantee for simultaneous events.
        let rec = vc_obs::NoopRecorder;
        let mut e = Engine::new();
        let t = SimTime::from_micros(9);
        for _ in 0..6 {
            e.schedule(t, "des.event.tie");
        }
        let mut n = 0;
        while let Some((at, _)) = e.pop_traced(&rec) {
            assert_eq!(at, t);
            n += 1;
        }
        assert_eq!(n, 6);
    }

    #[test]
    fn interleaved_schedule_pop() {
        // A chain: each event schedules the next; clock must advance
        // monotonically and deterministically.
        let mut e = Engine::new();
        e.schedule(SimTime::from_micros(1), 0u32);
        let mut seen = vec![];
        while let Some((t, ev)) = e.pop() {
            seen.push((t.as_micros(), ev));
            if ev < 3 {
                e.schedule_after(SimTime::from_micros(10), ev + 1);
            }
        }
        assert_eq!(seen, vec![(1, 0), (11, 1), (21, 2), (31, 3)]);
    }
}
