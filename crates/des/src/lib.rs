//! Deterministic discrete-event simulation kernel.
//!
//! Shared by the network, MapReduce, and cloud simulators. Design goals:
//!
//! * **Integer time** — [`SimTime`] is `u64` microseconds, so identical
//!   runs produce bit-identical schedules (no float drift);
//! * **Stable ordering** — events at equal times dequeue in insertion
//!   order (a `(time, sequence)` key), so simulations are reproducible
//!   regardless of `BinaryHeap` internals;
//! * **Pop-based main loop** — [`Engine::pop`] hands `(time, event)` back
//!   to the caller, which may schedule further events between pops; this
//!   sidesteps callback-borrow contortions and keeps the kernel tiny.
//!
//! ```
//! use vc_des::{Engine, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping(u32) }
//!
//! let mut engine = Engine::new();
//! engine.schedule(SimTime::from_millis(5), Ev::Ping(1));
//! engine.schedule(SimTime::from_millis(2), Ev::Ping(2));
//! let (t, ev) = engine.pop().unwrap();
//! assert_eq!((t, ev), (SimTime::from_millis(2), Ev::Ping(2)));
//! assert_eq!(engine.now(), SimTime::from_millis(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod time;

pub use engine::{Engine, EventKind};
pub use time::SimTime;
