//! Property tests for the event kernel: ordering, determinism, clock
//! monotonicity.

use proptest::prelude::*;
use vc_des::{Engine, SimTime};

proptest! {
    /// Events always pop in (time, insertion) order regardless of the
    /// schedule order, and the clock never goes backwards.
    #[test]
    fn total_order_and_monotone_clock(times in proptest::collection::vec(0u64..1000, 0..64)) {
        let mut engine = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            engine.schedule(SimTime::from_micros(t), i);
        }
        let mut last = (SimTime::ZERO, 0usize);
        let mut popped = 0;
        while let Some((t, idx)) = engine.pop() {
            prop_assert!(t >= last.0, "clock went backwards");
            if t == last.0 && popped > 0 {
                prop_assert!(idx > last.1, "FIFO violated for simultaneous events");
            }
            prop_assert_eq!(t, SimTime::from_micros(times[idx]));
            prop_assert_eq!(engine.now(), t);
            last = (t, idx);
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
        prop_assert_eq!(engine.events_processed() as usize, times.len());
    }

    /// Two identical schedules drain identically (determinism).
    #[test]
    fn deterministic_drain(times in proptest::collection::vec(0u64..100, 0..32)) {
        let run = || {
            let mut e = Engine::new();
            for (i, &t) in times.iter().enumerate() {
                e.schedule(SimTime::from_micros(t), i);
            }
            std::iter::from_fn(move || e.pop()).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// Interleaved scheduling during the drain preserves order: an event
    /// scheduled at `now + d` never pops before pending events ≤ that time.
    #[test]
    fn reentrant_scheduling_ordered(delays in proptest::collection::vec(1u64..50, 1..16)) {
        let mut engine = Engine::new();
        engine.schedule(SimTime::ZERO, 0usize);
        let mut order = vec![];
        while let Some((t, i)) = engine.pop() {
            order.push((t, i));
            if i < delays.len() {
                engine.schedule_after(SimTime::from_micros(delays[i]), i + 1);
            }
        }
        // Chain: timestamps strictly increase by the chosen delays.
        let mut expect = SimTime::ZERO;
        for (k, &(t, i)) in order.iter().enumerate() {
            prop_assert_eq!(i, k);
            prop_assert_eq!(t, expect);
            if k < delays.len() {
                expect += SimTime::from_micros(delays[k]);
            }
        }
    }
}
