//! Property tests for the MILP solver: cross-validate against exhaustive
//! enumeration on small random integer programs.

use proptest::prelude::*;
use vc_ilp::{Cmp, Problem, SolveError};

/// A random bounded integer program:
/// `max/min c·x, A x ≤ b, 0 ≤ x ≤ ub, x integer`, 2–3 vars, 1–3 rows.
#[derive(Debug, Clone)]
struct SmallIp {
    maximize: bool,
    costs: Vec<i32>,
    ubs: Vec<u32>,
    rows: Vec<(Vec<i32>, i64)>,
}

fn small_ip() -> impl Strategy<Value = SmallIp> {
    (
        any::<bool>(),
        proptest::collection::vec(-5i32..=5, 2..=3),
        proptest::collection::vec(1u32..=4, 2..=3),
        proptest::collection::vec((proptest::collection::vec(-3i32..=4, 3), 0i64..=20), 1..=3),
    )
        .prop_map(|(maximize, costs, mut ubs, rows)| {
            let n = costs.len();
            ubs.truncate(n);
            while ubs.len() < n {
                ubs.push(2);
            }
            let rows = rows
                .into_iter()
                .map(|(mut coeffs, rhs)| {
                    coeffs.truncate(n);
                    while coeffs.len() < n {
                        coeffs.push(0);
                    }
                    (coeffs, rhs)
                })
                .collect();
            SmallIp {
                maximize,
                costs,
                ubs,
                rows,
            }
        })
}

/// Exhaustive optimum by enumerating the (tiny) box.
fn brute(ip: &SmallIp) -> Option<f64> {
    let n = ip.costs.len();
    let mut best: Option<f64> = None;
    let mut x = vec![0u32; n];
    loop {
        // feasibility
        let ok = ip.rows.iter().all(|(coeffs, rhs)| {
            let lhs: i64 = coeffs
                .iter()
                .zip(&x)
                .map(|(&c, &v)| i64::from(c) * i64::from(v))
                .sum();
            lhs <= *rhs
        });
        if ok {
            let obj: f64 = ip
                .costs
                .iter()
                .zip(&x)
                .map(|(&c, &v)| f64::from(c) * f64::from(v))
                .sum();
            best = Some(match best {
                None => obj,
                Some(b) => {
                    if ip.maximize {
                        b.max(obj)
                    } else {
                        b.min(obj)
                    }
                }
            });
        }
        // odometer
        let mut i = 0;
        loop {
            if i == n {
                return best;
            }
            x[i] += 1;
            if x[i] <= ip.ubs[i] {
                break;
            }
            x[i] = 0;
            i += 1;
        }
    }
}

fn solve_with_milp(ip: &SmallIp) -> Result<f64, SolveError> {
    let mut p = if ip.maximize {
        Problem::maximize()
    } else {
        Problem::minimize()
    };
    let vars: Vec<_> = ip
        .costs
        .iter()
        .zip(&ip.ubs)
        .map(|(&c, &ub)| p.add_int_var(0.0, f64::from(ub), f64::from(c)))
        .collect();
    for (coeffs, rhs) in &ip.rows {
        let terms: Vec<_> = vars
            .iter()
            .zip(coeffs)
            .map(|(&v, &c)| (v, f64::from(c)))
            .collect();
        p.add_constraint(terms, Cmp::Le, *rhs as f64);
    }
    p.solve().map(|s| s.objective())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn milp_matches_enumeration(ip in small_ip()) {
        let expected = brute(&ip);
        match (solve_with_milp(&ip), expected) {
            (Ok(got), Some(want)) => {
                prop_assert!((got - want).abs() < 1e-6, "solver {got} vs brute {want} on {ip:?}");
            }
            (Err(SolveError::Infeasible), None) => {}
            // x = 0 is always within bounds, so infeasibility can only come
            // from the rows; enumeration and solver must agree.
            (got, want) => prop_assert!(false, "disagreement: {got:?} vs {want:?} on {ip:?}"),
        }
    }

    #[test]
    fn lp_relaxation_bounds_the_integer_optimum(ip in small_ip()) {
        let (Ok(relaxed), Ok(integral)) = ({
            let mut p = if ip.maximize { Problem::maximize() } else { Problem::minimize() };
            let vars: Vec<_> = ip.costs.iter().zip(&ip.ubs)
                .map(|(&c, &ub)| p.add_int_var(0.0, f64::from(ub), f64::from(c)))
                .collect();
            for (coeffs, rhs) in &ip.rows {
                let terms: Vec<_> = vars.iter().zip(coeffs)
                    .map(|(&v, &c)| (v, f64::from(c))).collect();
                p.add_constraint(terms, Cmp::Le, *rhs as f64);
            }
            (p.solve_relaxation().map(|s| s.objective()), p.solve().map(|s| s.objective()))
        }) else {
            return Ok(());
        };
        if ip.maximize {
            prop_assert!(relaxed >= integral - 1e-6);
        } else {
            prop_assert!(relaxed <= integral + 1e-6);
        }
    }
}
