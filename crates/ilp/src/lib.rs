//! A small, self-contained **mixed-integer linear programming** solver.
//!
//! The paper (§III-B) formulates the Shortest Distance problem as an
//! integer program; mature ILP bindings are scarce in the Rust ecosystem,
//! so this crate implements the classical toolchain from scratch:
//!
//! * a [`Problem`] builder — variables with bounds, linear constraints,
//!   a minimise/maximise objective;
//! * a **two-phase primal simplex** on a dense tableau with Dantzig
//!   pricing and a Bland's-rule fallback for anti-cycling;
//! * **branch & bound** over the integer variables with most-fractional
//!   branching and incumbent pruning.
//!
//! Scale target: the paper's instances are ~30 nodes × 3 VM types
//! (≈ 100 variables, ≈ 100 constraints), far below the point where dense
//! tableaus or from-scratch B&B become a bottleneck. Everything is `f64`
//! with explicit tolerances; integer answers are validated by the caller
//! (`vc-placement` cross-checks them against an exact combinatorial
//! solver).
//!
//! ```
//! use vc_ilp::{Problem, Cmp};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4,  x <= 2,  x,y >= 0 integer
//! let mut p = Problem::maximize();
//! let x = p.add_int_var(0.0, f64::INFINITY, 3.0);
//! let y = p.add_int_var(0.0, f64::INFINITY, 2.0);
//! p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
//! p.add_constraint(vec![(x, 1.0)], Cmp::Le, 2.0);
//! let sol = p.solve().unwrap();
//! assert_eq!(sol.int_value(x), 2);
//! assert_eq!(sol.int_value(y), 2);
//! assert!((sol.objective() - 10.0).abs() < 1e-6);
//! ```

// Index-based loops mirror the textbook matrix formulations here.
#![allow(clippy::needless_range_loop)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch_bound;
mod error;
mod problem;
mod simplex;
mod solution;

pub use error::SolveError;
pub use problem::{Cmp, Problem, Sense, VarId, VarKind};
pub use solution::Solution;

/// Tolerance below which a value is considered integral.
pub const INT_TOL: f64 = 1e-6;
/// Tolerance for feasibility / optimality comparisons.
pub const EPS: f64 = 1e-9;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lp_minimize_simple() {
        // minimize x + y  s.t.  x + 2y >= 4,  3x + y >= 6
        let mut p = Problem::minimize();
        let x = p.add_var(0.0, f64::INFINITY, 1.0);
        let y = p.add_var(0.0, f64::INFINITY, 1.0);
        p.add_constraint(vec![(x, 1.0), (y, 2.0)], Cmp::Ge, 4.0);
        p.add_constraint(vec![(x, 3.0), (y, 1.0)], Cmp::Ge, 6.0);
        let sol = p.solve().unwrap();
        // optimum at intersection: x = 8/5, y = 6/5, obj = 14/5
        assert!(
            (sol.objective() - 2.8).abs() < 1e-6,
            "obj = {}",
            sol.objective()
        );
        assert!((sol.value(x) - 1.6).abs() < 1e-6);
        assert!((sol.value(y) - 1.2).abs() < 1e-6);
    }

    #[test]
    fn lp_maximize_with_equality() {
        // maximize 2x + 3y  s.t.  x + y = 10, x <= 6
        let mut p = Problem::maximize();
        let x = p.add_var(0.0, 6.0, 2.0);
        let y = p.add_var(0.0, f64::INFINITY, 3.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 10.0);
        let sol = p.solve().unwrap();
        // all weight on y: obj = 30
        assert!((sol.objective() - 30.0).abs() < 1e-6);
        assert!(sol.value(x).abs() < 1e-6);
    }

    #[test]
    fn lp_infeasible() {
        let mut p = Problem::minimize();
        let x = p.add_var(0.0, 1.0, 1.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 5.0);
        assert_eq!(p.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn lp_unbounded() {
        let mut p = Problem::maximize();
        let x = p.add_var(0.0, f64::INFINITY, 1.0);
        p.add_constraint(vec![(x, -1.0)], Cmp::Le, 1.0);
        assert_eq!(p.solve().unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn mip_knapsack() {
        // classic 0/1 knapsack: values 60,100,120; weights 10,20,30; cap 50
        let mut p = Problem::maximize();
        let items: Vec<_> = [60.0, 100.0, 120.0]
            .iter()
            .map(|&v| p.add_int_var(0.0, 1.0, v))
            .collect();
        p.add_constraint(
            vec![(items[0], 10.0), (items[1], 20.0), (items[2], 30.0)],
            Cmp::Le,
            50.0,
        );
        let sol = p.solve().unwrap();
        assert!((sol.objective() - 220.0).abs() < 1e-6);
        assert_eq!(sol.int_value(items[0]), 0);
        assert_eq!(sol.int_value(items[1]), 1);
        assert_eq!(sol.int_value(items[2]), 1);
    }

    #[test]
    fn mip_requires_branching() {
        // LP relaxation is fractional: maximize x + y s.t. 2x + 2y <= 3
        let mut p = Problem::maximize();
        let x = p.add_int_var(0.0, f64::INFINITY, 1.0);
        let y = p.add_int_var(0.0, f64::INFINITY, 1.0);
        p.add_constraint(vec![(x, 2.0), (y, 2.0)], Cmp::Le, 3.0);
        let sol = p.solve().unwrap();
        assert!((sol.objective() - 1.0).abs() < 1e-6);
        assert_eq!(sol.int_value(x) + sol.int_value(y), 1);
    }

    #[test]
    fn mip_assignment_problem() {
        let cost = [[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]];
        let mut p = Problem::minimize();
        let mut vars = vec![];
        for row in &cost {
            let r: Vec<_> = row.iter().map(|&c| p.add_int_var(0.0, 1.0, c)).collect();
            vars.push(r);
        }
        for i in 0..3 {
            p.add_constraint((0..3).map(|j| (vars[i][j], 1.0)).collect(), Cmp::Eq, 1.0);
            p.add_constraint((0..3).map(|j| (vars[j][i], 1.0)).collect(), Cmp::Eq, 1.0);
        }
        let sol = p.solve().unwrap();
        // optimum: (0,1)=1, (1,0)=2, (2,2)=2 -> 5
        assert!(
            (sol.objective() - 5.0).abs() < 1e-6,
            "obj = {}",
            sol.objective()
        );
    }

    #[test]
    fn mixed_integer_and_continuous() {
        // minimize x + y, x integer, s.t. x + y >= 2.5, x >= 0.7
        let mut p = Problem::minimize();
        let x = p.add_int_var(0.0, f64::INFINITY, 1.0);
        let y = p.add_var(0.0, f64::INFINITY, 1.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 2.5);
        p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 0.7);
        let sol = p.solve().unwrap();
        // Optimal objective is 2.5; both (x=1, y=1.5) and (x=2, y=0.5) attain it.
        assert!((sol.objective() - 2.5).abs() < 1e-6);
        let x_val = sol.int_value(x);
        assert!(x_val == 1 || x_val == 2, "x = {x_val}");
        assert!((sol.value(x) + sol.value(y) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn mip_infeasible_after_branching() {
        // x integer, 0.2 <= x <= 0.8 has no integer point
        let mut p = Problem::minimize();
        let x = p.add_int_var(0.0, 1.0, 1.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 0.2);
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 0.8);
        assert_eq!(p.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn negative_rhs_normalized() {
        // minimize x s.t. -x <= -3   (i.e. x >= 3)
        let mut p = Problem::minimize();
        let x = p.add_var(0.0, f64::INFINITY, 1.0);
        p.add_constraint(vec![(x, -1.0)], Cmp::Le, -3.0);
        let sol = p.solve().unwrap();
        assert!((sol.value(x) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn shifted_lower_bounds() {
        // minimize x + y with x >= 2, y >= 3, x + y >= 7
        let mut p = Problem::minimize();
        let x = p.add_var(2.0, f64::INFINITY, 1.0);
        let y = p.add_var(3.0, f64::INFINITY, 1.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 7.0);
        let sol = p.solve().unwrap();
        assert!((sol.objective() - 7.0).abs() < 1e-6);
        assert!(sol.value(x) >= 2.0 - 1e-9);
        assert!(sol.value(y) >= 3.0 - 1e-9);
    }

    #[test]
    fn zero_objective_feasibility_problem() {
        let mut p = Problem::minimize();
        let x = p.add_var(0.0, 10.0, 0.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 4.0);
        let sol = p.solve().unwrap();
        assert!((sol.objective()).abs() < 1e-9);
        assert!(sol.value(x) >= 4.0 - 1e-6);
    }

    #[test]
    fn degenerate_lp_terminates() {
        let mut p = Problem::maximize();
        let x1 = p.add_var(0.0, f64::INFINITY, 100.0);
        let x2 = p.add_var(0.0, f64::INFINITY, 10.0);
        let x3 = p.add_var(0.0, f64::INFINITY, 1.0);
        p.add_constraint(vec![(x1, 1.0)], Cmp::Le, 1.0);
        p.add_constraint(vec![(x1, 20.0), (x2, 1.0)], Cmp::Le, 100.0);
        p.add_constraint(vec![(x1, 200.0), (x2, 20.0), (x3, 1.0)], Cmp::Le, 10000.0);
        let sol = p.solve().unwrap();
        assert!(
            (sol.objective() - 10000.0).abs() < 1e-4,
            "obj = {}",
            sol.objective()
        );
    }

    #[test]
    fn transportation_problem_integral() {
        // 2 supplies (10, 20), 2 demands (15, 15), costs [[1,4],[2,1]].
        // Optimal: s0->d0: 10, s1->d0: 5, s1->d1: 15 => 10 + 10 + 15 = 35.
        let mut p = Problem::minimize();
        let costs = [[1.0, 4.0], [2.0, 1.0]];
        let supply = [10.0, 20.0];
        let demand = [15.0, 15.0];
        let mut x = vec![];
        for i in 0..2 {
            let row: Vec<_> = (0..2)
                .map(|j| p.add_int_var(0.0, f64::INFINITY, costs[i][j]))
                .collect();
            x.push(row);
        }
        for i in 0..2 {
            p.add_constraint((0..2).map(|j| (x[i][j], 1.0)).collect(), Cmp::Le, supply[i]);
        }
        for j in 0..2 {
            p.add_constraint((0..2).map(|i| (x[i][j], 1.0)).collect(), Cmp::Eq, demand[j]);
        }
        let sol = p.solve().unwrap();
        assert!(
            (sol.objective() - 35.0).abs() < 1e-6,
            "obj = {}",
            sol.objective()
        );
    }
}
