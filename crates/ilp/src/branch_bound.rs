//! Branch & bound over the integer variables.
//!
//! Each node is a set of variable-bound overrides layered on the base
//! problem; the LP relaxation provides the node bound. Branching picks the
//! integer variable whose relaxation value is closest to `.5`
//! (most-fractional) and splits into `x ≤ ⌊v⌋` / `x ≥ ⌈v⌉` children,
//! explored depth-first (floor child first) so an incumbent is found
//! quickly and deeper nodes prune.

use crate::error::SolveError;
use crate::problem::{Problem, Sense, VarKind};
use crate::simplex::solve_lp;
use crate::solution::Solution;
use crate::{EPS, INT_TOL};

/// Default branch-and-bound node budget — far above anything the paper's
/// instances need (they solve in tens of nodes).
pub(crate) const DEFAULT_NODE_LIMIT: usize = 200_000;

#[derive(Debug, Clone)]
struct Node {
    /// `(var_index, lower, upper)` overrides accumulated along the path.
    overrides: Vec<(usize, f64, f64)>,
}

pub(crate) fn solve_mip(problem: &Problem, node_limit: usize) -> Result<Solution, SolveError> {
    let int_vars: Vec<usize> = problem
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| v.kind == VarKind::Integer)
        .map(|(i, _)| i)
        .collect();

    // `better(a, b)`: is objective `a` strictly better than `b`?
    let better = |a: f64, b: f64| match problem.sense {
        Sense::Minimize => a < b - EPS,
        Sense::Maximize => a > b + EPS,
    };
    // Can a node with relaxation bound `bound` still beat `incumbent`?
    let promising = |bound: f64, incumbent: f64| match problem.sense {
        Sense::Minimize => bound < incumbent - EPS,
        Sense::Maximize => bound > incumbent + EPS,
    };

    let mut stack = vec![Node {
        overrides: Vec::new(),
    }];
    let mut incumbent: Option<Solution> = None;
    let mut nodes = 0usize;

    while let Some(node) = stack.pop() {
        nodes += 1;
        if nodes > node_limit {
            return Err(SolveError::NodeLimit(node_limit));
        }

        let relaxed = match solve_lp(problem, &node.overrides) {
            Ok(s) => s,
            Err(SolveError::Infeasible) => continue,
            Err(e) => return Err(e),
        };

        if let Some(ref inc) = incumbent {
            if !promising(relaxed.objective(), inc.objective()) {
                continue;
            }
        }

        // Most-fractional integer variable.
        let fractional = int_vars
            .iter()
            .map(|&i| {
                let v = relaxed.value_at(i);
                let frac = (v - v.round()).abs();
                (i, v, frac)
            })
            .filter(|&(_, _, frac)| frac > INT_TOL)
            .max_by(|a, b| a.2.total_cmp(&b.2));

        match fractional {
            None => {
                // Integral: candidate incumbent (snap near-integers).
                let snapped = relaxed.snap_integers(&int_vars);
                match incumbent {
                    Some(ref inc) if !better(snapped.objective(), inc.objective()) => {}
                    _ => incumbent = Some(snapped),
                }
            }
            Some((var, value, _)) => {
                let floor = value.floor();
                // Push ceil child first so the floor child is explored
                // first (LIFO) — a mild "round down" preference.
                let mut up = node.overrides.clone();
                up.push((var, floor + 1.0, f64::INFINITY));
                stack.push(Node { overrides: up });
                let mut down = node.overrides;
                down.push((var, f64::NEG_INFINITY, floor));
                stack.push(Node { overrides: down });
            }
        }
    }

    incumbent.ok_or(SolveError::Infeasible)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, Problem};

    #[test]
    fn node_limit_enforced() {
        // A MIP that needs at least a few nodes, with budget 1.
        let mut p = Problem::maximize();
        let x = p.add_int_var(0.0, f64::INFINITY, 1.0);
        let y = p.add_int_var(0.0, f64::INFINITY, 1.0);
        p.add_constraint(vec![(x, 2.0), (y, 2.0)], Cmp::Le, 3.0);
        let err = p.solve_with_node_limit(1).unwrap_err();
        assert_eq!(err, SolveError::NodeLimit(1));
    }

    #[test]
    fn integral_relaxation_skips_branching() {
        let mut p = Problem::minimize();
        let x = p.add_int_var(0.0, 10.0, 1.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 4.0);
        let sol = p.solve_with_node_limit(1).unwrap(); // one node suffices
        assert_eq!(sol.int_value(x), 4);
    }

    #[test]
    fn bound_propagation_via_overrides() {
        // maximize x: 0 <= x <= 9.5, x integer -> 9
        let mut p = Problem::maximize();
        let x = p.add_int_var(0.0, 9.5, 1.0);
        let sol = p.solve().unwrap();
        assert_eq!(sol.int_value(x), 9);
    }

    #[test]
    fn minimize_vs_maximize_incumbent_direction() {
        let mut p = Problem::minimize();
        let x = p.add_int_var(0.0, 5.0, 1.0);
        p.add_constraint(vec![(x, 2.0)], Cmp::Ge, 3.0);
        assert_eq!(p.solve().unwrap().int_value(x), 2);

        let mut p = Problem::maximize();
        let x = p.add_int_var(0.0, 5.0, 1.0);
        p.add_constraint(vec![(x, 2.0)], Cmp::Le, 7.0);
        assert_eq!(p.solve().unwrap().int_value(x), 3);
    }
}
