//! The MILP model builder.

use crate::{branch_bound, error::SolveError, simplex, Solution};
use serde::{Deserialize, Serialize};

/// Handle to a decision variable within one [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// The dense index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Whether a variable must take integer values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VarKind {
    /// Real-valued.
    Continuous,
    /// Integer-valued (branch & bound enforces this).
    Integer,
}

/// Objective direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sense {
    /// Minimise the objective.
    Minimize,
    /// Maximise the objective.
    Maximize,
}

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cmp {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ = b`
    Eq,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
}

#[derive(Debug, Clone)]
pub(crate) struct Variable {
    pub lower: f64,
    pub upper: f64,
    pub kind: VarKind,
    pub cost: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub terms: Vec<(VarId, f64)>,
    pub cmp: Cmp,
    pub rhs: f64,
}

/// A mixed-integer linear program under construction.
///
/// Variables carry their bounds and objective coefficient; constraints are
/// arbitrary linear combinations. Lower bounds must be finite (the SD/GSD
/// formulations only need `x ≥ 0`); upper bounds may be `f64::INFINITY`.
#[derive(Debug, Clone)]
pub struct Problem {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
}

impl Problem {
    /// Start a minimisation problem.
    pub fn minimize() -> Self {
        Self {
            sense: Sense::Minimize,
            vars: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Start a maximisation problem.
    pub fn maximize() -> Self {
        Self {
            sense: Sense::Maximize,
            vars: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Objective direction.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Add a continuous variable with bounds `[lower, upper]` and objective
    /// coefficient `cost`.
    ///
    /// # Panics
    /// Panics if `lower` is not finite, if `upper < lower`, or if either is
    /// NaN.
    pub fn add_var(&mut self, lower: f64, upper: f64, cost: f64) -> VarId {
        self.add_var_kind(lower, upper, cost, VarKind::Continuous)
    }

    /// Add an integer variable with bounds `[lower, upper]` and objective
    /// coefficient `cost`.
    ///
    /// # Panics
    /// Panics under the same conditions as [`add_var`](Self::add_var).
    pub fn add_int_var(&mut self, lower: f64, upper: f64, cost: f64) -> VarId {
        self.add_var_kind(lower, upper, cost, VarKind::Integer)
    }

    fn add_var_kind(&mut self, lower: f64, upper: f64, cost: f64, kind: VarKind) -> VarId {
        assert!(
            lower.is_finite(),
            "lower bound must be finite (got {lower})"
        );
        assert!(
            !upper.is_nan() && upper >= lower,
            "invalid bounds [{lower}, {upper}]"
        );
        assert!(cost.is_finite(), "objective coefficient must be finite");
        let id = VarId(self.vars.len());
        self.vars.push(Variable {
            lower,
            upper,
            kind,
            cost,
        });
        id
    }

    /// Add the constraint `Σ coeff·var  cmp  rhs`.
    ///
    /// Duplicate variables in `terms` are summed. Terms with zero
    /// coefficient are kept (harmless).
    ///
    /// # Panics
    /// Panics if a `VarId` does not belong to this problem, or if any
    /// coefficient or the rhs is not finite.
    pub fn add_constraint(&mut self, terms: Vec<(VarId, f64)>, cmp: Cmp, rhs: f64) {
        assert!(rhs.is_finite(), "constraint rhs must be finite");
        for &(v, c) in &terms {
            assert!(
                v.0 < self.vars.len(),
                "variable does not belong to this problem"
            );
            assert!(c.is_finite(), "constraint coefficient must be finite");
        }
        self.constraints.push(Constraint { terms, cmp, rhs });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Whether any variable is integer.
    pub fn has_integers(&self) -> bool {
        self.vars.iter().any(|v| v.kind == VarKind::Integer)
    }

    /// Solve to optimality.
    ///
    /// Pure LPs go straight to the simplex; problems with integer
    /// variables go through branch & bound with a generous default node
    /// budget (200 000 nodes).
    ///
    /// Caveat: if the LP *relaxation* is unbounded the solver reports
    /// [`SolveError::Unbounded`] without checking whether an integer
    /// point exists — an integer-infeasible program with an unbounded
    /// relaxation is therefore reported as unbounded. All problems built
    /// by this repository have finite variable bounds, where the case
    /// cannot arise.
    pub fn solve(&self) -> Result<Solution, SolveError> {
        self.solve_with_node_limit(branch_bound::DEFAULT_NODE_LIMIT)
    }

    /// Solve with an explicit branch-and-bound node budget.
    pub fn solve_with_node_limit(&self, node_limit: usize) -> Result<Solution, SolveError> {
        if self.has_integers() {
            branch_bound::solve_mip(self, node_limit)
        } else {
            simplex::solve_lp(self, &[])
        }
    }

    /// Solve the LP relaxation only (integrality dropped).
    pub fn solve_relaxation(&self) -> Result<Solution, SolveError> {
        simplex::solve_lp(self, &[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_counts() {
        let mut p = Problem::minimize();
        let x = p.add_var(0.0, 1.0, 1.0);
        let y = p.add_int_var(0.0, 1.0, 1.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 1.0);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_constraints(), 1);
        assert!(p.has_integers());
        assert_eq!(p.sense(), Sense::Minimize);
    }

    #[test]
    #[should_panic(expected = "lower bound must be finite")]
    fn infinite_lower_bound_rejected() {
        let mut p = Problem::minimize();
        let _ = p.add_var(f64::NEG_INFINITY, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid bounds")]
    fn inverted_bounds_rejected() {
        let mut p = Problem::minimize();
        let _ = p.add_var(2.0, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn foreign_var_rejected() {
        let mut p = Problem::minimize();
        let mut q = Problem::minimize();
        let x = p.add_var(0.0, 1.0, 1.0);
        let _ = x;
        // q has no variables; using p's var id 0 must panic
        q.add_constraint(vec![(VarId(0), 1.0)], Cmp::Le, 1.0);
    }

    #[test]
    #[should_panic(expected = "rhs must be finite")]
    fn nan_rhs_rejected() {
        let mut p = Problem::minimize();
        let x = p.add_var(0.0, 1.0, 1.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, f64::NAN);
    }

    #[test]
    fn relaxation_drops_integrality() {
        let mut p = Problem::maximize();
        let x = p.add_int_var(0.0, f64::INFINITY, 1.0);
        p.add_constraint(vec![(x, 2.0)], Cmp::Le, 3.0);
        let relaxed = p.solve_relaxation().unwrap();
        assert!((relaxed.value(x) - 1.5).abs() < 1e-6);
        let integral = p.solve().unwrap();
        assert_eq!(integral.int_value(x), 1);
    }
}
