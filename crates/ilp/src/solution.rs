//! Solver output.

use crate::problem::VarId;
use crate::INT_TOL;

/// An optimal (or incumbent-optimal) assignment of values to variables.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    values: Vec<f64>,
    objective: f64,
}

impl Solution {
    pub(crate) fn new(values: Vec<f64>, objective: f64) -> Self {
        Self { values, objective }
    }

    /// The objective value at this solution (in the problem's own sense —
    /// no sign flipping).
    #[inline]
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Value of a variable.
    ///
    /// # Panics
    /// Panics if `var` is out of range.
    #[inline]
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    #[inline]
    pub(crate) fn value_at(&self, index: usize) -> f64 {
        self.values[index]
    }

    /// Value of an integer variable, rounded to the nearest integer.
    ///
    /// # Panics
    /// Panics if the stored value is further than `1e-4` from an integer
    /// (a looser bound than the solver's branching tolerance
    /// [`INT_TOL`](crate::INT_TOL), to absorb accumulated simplex
    /// round-off) — calling this on a continuous variable with a
    /// genuinely fractional value is a bug.
    pub fn int_value(&self, var: VarId) -> i64 {
        let v = self.values[var.index()];
        let r = v.round();
        assert!(
            (v - r).abs() <= 1e-4,
            "variable {} has non-integral value {v}",
            var.index()
        );
        r as i64
    }

    /// All values, indexed by variable.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Snap the listed variables to exact integers (post-B&B cleanup) and
    /// return the adjusted solution. The objective is kept as computed.
    pub(crate) fn snap_integers(mut self, int_vars: &[usize]) -> Self {
        for &i in int_vars {
            let v = self.values[i];
            if (v - v.round()).abs() <= INT_TOL * 10.0 {
                self.values[i] = v.round();
            }
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let s = Solution::new(vec![1.0, 2.5], 4.5);
        assert_eq!(s.objective(), 4.5);
        assert_eq!(s.value(VarId(1)), 2.5);
        assert_eq!(s.values(), &[1.0, 2.5]);
        assert_eq!(s.int_value(VarId(0)), 1);
    }

    #[test]
    #[should_panic(expected = "non-integral")]
    fn int_value_on_fraction_panics() {
        let s = Solution::new(vec![0.5], 0.5);
        let _ = s.int_value(VarId(0));
    }

    #[test]
    fn snap_cleans_near_integers() {
        let s = Solution::new(vec![2.0 + 1e-7, 0.4], 0.0).snap_integers(&[0]);
        assert_eq!(s.value(VarId(0)), 2.0);
        assert_eq!(s.value(VarId(1)), 0.4);
    }
}
