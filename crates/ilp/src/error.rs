//! Solver failure modes.

use std::fmt;

/// Why the solver could not return an optimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// No assignment satisfies all constraints and bounds.
    Infeasible,
    /// The objective can be improved without limit.
    Unbounded,
    /// The simplex hit its iteration cap (pathological cycling/instability).
    IterationLimit,
    /// Branch & bound exhausted its node budget before proving optimality.
    NodeLimit(usize),
    /// Numerical breakdown (e.g. a phase-1 subproblem reported unbounded,
    /// which is mathematically impossible and indicates conditioning
    /// problems).
    NumericalTrouble,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Infeasible => write!(f, "problem is infeasible"),
            Self::Unbounded => write!(f, "problem is unbounded"),
            Self::IterationLimit => write!(f, "simplex iteration limit reached"),
            Self::NodeLimit(n) => write!(f, "branch-and-bound node limit ({n}) reached"),
            Self::NumericalTrouble => write!(f, "numerical trouble in simplex"),
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(SolveError::Infeasible.to_string(), "problem is infeasible");
        assert_eq!(SolveError::Unbounded.to_string(), "problem is unbounded");
        assert!(SolveError::NodeLimit(7).to_string().contains('7'));
        assert!(SolveError::IterationLimit.to_string().contains("iteration"));
        assert!(SolveError::NumericalTrouble
            .to_string()
            .contains("numerical"));
    }
}
