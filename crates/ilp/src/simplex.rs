//! Two-phase primal simplex on a dense tableau.
//!
//! The solver works on the standard form `min c·y, A·y = b, y ≥ 0, b ≥ 0`
//! obtained by shifting variables to zero lower bounds, turning finite
//! upper bounds into rows, adding slack/surplus columns, and adding
//! artificial columns for `=`/`≥` rows. Phase 1 minimises the artificial
//! sum to find a basic feasible solution; phase 2 optimises the real
//! objective with artificial columns barred from entering the basis.
//!
//! Pricing is Dantzig (most negative reduced cost); after a large number
//! of iterations the solver switches to Bland's rule, which guarantees
//! termination on degenerate problems.

// Index-based loops mirror the textbook matrix formulations here.
#![allow(clippy::needless_range_loop)]

use crate::error::SolveError;
use crate::problem::{Cmp, Problem, Sense};
use crate::solution::Solution;
use crate::EPS;

/// Pivot tolerance: entries smaller than this are treated as zero.
const PIVOT_TOL: f64 = 1e-9;
/// Phase-1 objective above this is declared infeasible.
const FEAS_TOL: f64 = 1e-7;

/// Solve the LP relaxation of `problem`, with per-variable bound overrides
/// `(var_index, lower, upper)` applied on top (used by branch & bound).
pub(crate) fn solve_lp(
    problem: &Problem,
    bound_overrides: &[(usize, f64, f64)],
) -> Result<Solution, SolveError> {
    let nv = problem.vars.len();

    // Effective bounds.
    let mut lower: Vec<f64> = problem.vars.iter().map(|v| v.lower).collect();
    let mut upper: Vec<f64> = problem.vars.iter().map(|v| v.upper).collect();
    for &(i, lo, up) in bound_overrides {
        lower[i] = lower[i].max(lo);
        upper[i] = upper[i].min(up);
    }
    for i in 0..nv {
        if lower[i] > upper[i] + EPS {
            return Err(SolveError::Infeasible);
        }
    }

    // Minimisation costs over the *shifted* variables y = x - lower.
    let flip = match problem.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let costs: Vec<f64> = problem.vars.iter().map(|v| flip * v.cost).collect();

    // Assemble rows: user constraints (shifted rhs), then upper-bound rows.
    struct Row {
        coeffs: Vec<f64>, // dense over structural vars
        cmp: Cmp,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(problem.constraints.len() + nv);
    for c in &problem.constraints {
        let mut coeffs = vec![0.0; nv];
        let mut shift = 0.0;
        for &(v, a) in &c.terms {
            coeffs[v.index()] += a;
            shift += a * lower[v.index()];
        }
        rows.push(Row {
            coeffs,
            cmp: c.cmp,
            rhs: c.rhs - shift,
        });
    }
    for i in 0..nv {
        if upper[i].is_finite() && upper[i] > lower[i] + EPS {
            let mut coeffs = vec![0.0; nv];
            coeffs[i] = 1.0;
            rows.push(Row {
                coeffs,
                cmp: Cmp::Le,
                rhs: upper[i] - lower[i],
            });
        } else if upper[i].is_finite() {
            // Fixed variable: y_i = upper - lower (possibly 0).
            let mut coeffs = vec![0.0; nv];
            coeffs[i] = 1.0;
            rows.push(Row {
                coeffs,
                cmp: Cmp::Eq,
                rhs: upper[i] - lower[i],
            });
        }
    }

    // Normalise rhs >= 0.
    for r in &mut rows {
        if r.rhs < 0.0 {
            r.rhs = -r.rhs;
            for a in &mut r.coeffs {
                *a = -*a;
            }
            r.cmp = match r.cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Eq => Cmp::Eq,
                Cmp::Ge => Cmp::Le,
            };
        }
    }

    // Column layout: structural | slack/surplus | artificial | rhs.
    let m = rows.len();
    let num_slack = rows.iter().filter(|r| r.cmp != Cmp::Eq).count();
    let num_art = rows.iter().filter(|r| r.cmp != Cmp::Le).count();
    let slack0 = nv;
    let art0 = nv + num_slack;
    let ncols = nv + num_slack + num_art;

    let mut tableau: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut basis: Vec<usize> = Vec::with_capacity(m);
    let mut next_slack = slack0;
    let mut next_art = art0;
    for r in &rows {
        let mut t = vec![0.0; ncols + 1];
        t[..nv].copy_from_slice(&r.coeffs);
        t[ncols] = r.rhs;
        match r.cmp {
            Cmp::Le => {
                t[next_slack] = 1.0;
                basis.push(next_slack);
                next_slack += 1;
            }
            Cmp::Ge => {
                t[next_slack] = -1.0;
                next_slack += 1;
                t[next_art] = 1.0;
                basis.push(next_art);
                next_art += 1;
            }
            Cmp::Eq => {
                t[next_art] = 1.0;
                basis.push(next_art);
                next_art += 1;
            }
        }
        tableau.push(t);
    }

    let is_artificial = |col: usize| col >= art0;
    let iter_limit = 2000 + 200 * (m + ncols);

    // ---- Phase 1: minimise the sum of artificials. ----
    if num_art > 0 {
        let mut phase1_costs = vec![0.0; ncols];
        for c in art0..ncols {
            phase1_costs[c] = 1.0;
        }
        let mut obj = build_objective_row(&tableau, &basis, &phase1_costs, ncols);
        run_simplex(
            &mut tableau,
            &mut basis,
            &mut obj,
            ncols,
            iter_limit,
            |_| true,
        )
        .map_err(|e| match e {
            // A phase-1 problem is never unbounded (objective >= 0).
            SolveError::Unbounded => SolveError::NumericalTrouble,
            other => other,
        })?;
        let phase1_value = -obj[ncols];
        if phase1_value > FEAS_TOL {
            return Err(SolveError::Infeasible);
        }
        // Drive any artificial still in the basis out (degenerate rows).
        for row in 0..m {
            if is_artificial(basis[row]) {
                if let Some(col) = (0..art0).find(|&c| tableau[row][c].abs() > PIVOT_TOL) {
                    pivot(&mut tableau, &mut basis, None, row, col);
                } // else: redundant row; its artificial stays basic at 0.
            }
        }
    }

    // ---- Phase 2: minimise the real objective. ----
    let mut phase2_costs = vec![0.0; ncols];
    phase2_costs[..nv].copy_from_slice(&costs);
    let mut obj = build_objective_row(&tableau, &basis, &phase2_costs, ncols);
    run_simplex(&mut tableau, &mut basis, &mut obj, ncols, iter_limit, |c| {
        !is_artificial(c)
    })?;

    // Extract the solution (shift back).
    let mut values = lower;
    for row in 0..m {
        let col = basis[row];
        if col < nv {
            values[col] += tableau[row][ncols];
        }
    }
    let objective: f64 = problem
        .vars
        .iter()
        .enumerate()
        .map(|(i, v)| v.cost * values[i])
        .sum();
    Ok(Solution::new(values, objective))
}

/// Reduced-cost row `[c̄_0 … c̄_{ncols-1} | -objective]` for the given
/// basis, built by eliminating the basic columns from the raw cost row.
fn build_objective_row(
    tableau: &[Vec<f64>],
    basis: &[usize],
    costs: &[f64],
    ncols: usize,
) -> Vec<f64> {
    let mut obj = vec![0.0; ncols + 1];
    obj[..ncols].copy_from_slice(costs);
    for (row, &bcol) in basis.iter().enumerate() {
        let c = obj[bcol];
        if c != 0.0 {
            for j in 0..=ncols {
                obj[j] -= c * tableau[row][j];
            }
        }
    }
    obj
}

/// Run simplex iterations until optimal, unbounded, or the iteration limit.
///
/// `allowed` filters columns that may enter the basis (used to bar
/// artificial columns in phase 2).
fn run_simplex(
    tableau: &mut [Vec<f64>],
    basis: &mut [usize],
    obj: &mut Vec<f64>,
    ncols: usize,
    iter_limit: usize,
    allowed: impl Fn(usize) -> bool,
) -> Result<(), SolveError> {
    let m = tableau.len();
    let bland_after = iter_limit / 2;
    for iter in 0..iter_limit {
        let use_bland = iter >= bland_after;

        // Entering column.
        let entering = if use_bland {
            (0..ncols).find(|&j| allowed(j) && obj[j] < -EPS)
        } else {
            let mut best: Option<(usize, f64)> = None;
            for j in 0..ncols {
                if allowed(j) && obj[j] < -EPS && best.is_none_or(|(_, v)| obj[j] < v) {
                    best = Some((j, obj[j]));
                }
            }
            best.map(|(j, _)| j)
        };
        let Some(col) = entering else {
            return Ok(()); // optimal
        };

        // Ratio test for the leaving row.
        let mut leave: Option<(usize, f64)> = None;
        for row in 0..m {
            let a = tableau[row][col];
            if a > PIVOT_TOL {
                let ratio = tableau[row][ncols] / a;
                let better = match leave {
                    None => true,
                    Some((lrow, lratio)) => {
                        ratio < lratio - EPS || (ratio < lratio + EPS && basis[row] < basis[lrow])
                    }
                };
                if better {
                    leave = Some((row, ratio));
                }
            }
        }
        let Some((row, _)) = leave else {
            return Err(SolveError::Unbounded);
        };
        pivot(tableau, basis, Some(obj), row, col);
    }
    Err(SolveError::IterationLimit)
}

/// Pivot on `(row, col)`: scale the pivot row and eliminate the column
/// from every other row (and the objective row, when given).
fn pivot(
    tableau: &mut [Vec<f64>],
    basis: &mut [usize],
    obj: Option<&mut Vec<f64>>,
    row: usize,
    col: usize,
) {
    let ncols = tableau[row].len() - 1;
    let p = tableau[row][col];
    debug_assert!(p.abs() > PIVOT_TOL, "pivot on (near-)zero element");
    for j in 0..=ncols {
        tableau[row][j] /= p;
    }
    for r in 0..tableau.len() {
        if r != row {
            let f = tableau[r][col];
            if f != 0.0 {
                for j in 0..=ncols {
                    tableau[r][j] -= f * tableau[row][j];
                }
            }
        }
    }
    if let Some(obj) = obj {
        let f = obj[col];
        if f != 0.0 {
            for j in 0..=ncols {
                obj[j] -= f * tableau[row][j];
            }
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;

    #[test]
    fn fixed_variable_handled() {
        // x fixed to 3 by equal bounds.
        let mut p = Problem::minimize();
        let x = p.add_var(3.0, 3.0, 2.0);
        let sol = solve_lp(&p, &[]).unwrap();
        assert!((sol.value(x) - 3.0).abs() < 1e-9);
        assert!((sol.objective() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn bound_overrides_tighten() {
        let mut p = Problem::maximize();
        let x = p.add_var(0.0, 10.0, 1.0);
        let loose = solve_lp(&p, &[]).unwrap();
        assert!((loose.value(x) - 10.0).abs() < 1e-9);
        let tight = solve_lp(&p, &[(x.index(), 0.0, 4.0)]).unwrap();
        assert!((tight.value(x) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn conflicting_overrides_infeasible() {
        let mut p = Problem::minimize();
        let x = p.add_var(0.0, 10.0, 1.0);
        let err = solve_lp(&p, &[(x.index(), 5.0, 2.0)]).unwrap_err();
        assert_eq!(err, SolveError::Infeasible);
    }

    #[test]
    fn redundant_equality_rows() {
        // x + y = 2 twice (redundant artificial row stays basic at 0).
        let mut p = Problem::minimize();
        let x = p.add_var(0.0, f64::INFINITY, 1.0);
        let y = p.add_var(0.0, f64::INFINITY, 2.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], crate::Cmp::Eq, 2.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], crate::Cmp::Eq, 2.0);
        let sol = solve_lp(&p, &[]).unwrap();
        assert!((sol.value(x) - 2.0).abs() < 1e-6);
        assert!((sol.objective() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn no_constraints_sits_at_bounds() {
        let mut p = Problem::minimize();
        let x = p.add_var(1.0, 5.0, 1.0); // wants its lower bound
        let y = p.add_var(1.0, 5.0, -1.0); // wants its upper bound
        let sol = solve_lp(&p, &[]).unwrap();
        assert!((sol.value(x) - 1.0).abs() < 1e-9);
        assert!((sol.value(y) - 5.0).abs() < 1e-9);
    }
}
