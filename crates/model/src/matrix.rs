//! Dense `n × m` (node × VM type) count matrices — the paper's `M`, `C`,
//! and `L` structures.

use crate::{Request, VmTypeId};
use serde::{Deserialize, Serialize};
use vc_topology::NodeId;

/// A dense `n × m` matrix of VM counts: entry `(i, j)` counts instances of
/// type `V_j` on node `N_i`.
///
/// The same type serves as the capacity matrix `M`, the global allocation
/// matrix `C`, the remaining matrix `L = M − C`, and per-request allocation
/// matrices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceMatrix {
    n: usize,
    m: usize,
    data: Vec<u32>,
}

impl ResourceMatrix {
    /// An all-zero `n × m` matrix.
    pub fn zeros(n: usize, m: usize) -> Self {
        Self {
            n,
            m,
            data: vec![0; n * m],
        }
    }

    /// Build from explicit rows (one per node, `m` entries each).
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<u32>]) -> Self {
        let n = rows.len();
        let m = rows.first().map_or(0, Vec::len);
        for row in rows {
            assert_eq!(row.len(), m, "all rows must have the same length");
        }
        Self {
            n,
            m,
            data: rows.iter().flat_map(|r| r.iter().copied()).collect(),
        }
    }

    /// Number of nodes (rows).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of VM types (columns).
    #[inline]
    pub fn num_types(&self) -> usize {
        self.m
    }

    /// Count at `(node, vm_type)`.
    ///
    /// # Panics
    /// Panics if either index is out of range.
    #[inline]
    pub fn get(&self, node: NodeId, vm_type: VmTypeId) -> u32 {
        self.data[self.offset(node, vm_type)]
    }

    /// Set the count at `(node, vm_type)`.
    ///
    /// # Panics
    /// Panics if either index is out of range.
    #[inline]
    pub fn set(&mut self, node: NodeId, vm_type: VmTypeId, value: u32) {
        let o = self.offset(node, vm_type);
        self.data[o] = value;
    }

    /// Add `delta` to the count at `(node, vm_type)`.
    ///
    /// # Panics
    /// Panics on index out of range or `u32` overflow.
    #[inline]
    pub fn add(&mut self, node: NodeId, vm_type: VmTypeId, delta: u32) {
        let o = self.offset(node, vm_type);
        self.data[o] = self.data[o].checked_add(delta).expect("VM count overflow");
    }

    /// Subtract `delta` from the count at `(node, vm_type)`.
    ///
    /// # Panics
    /// Panics on index out of range or underflow below zero.
    #[inline]
    pub fn sub(&mut self, node: NodeId, vm_type: VmTypeId, delta: u32) {
        let o = self.offset(node, vm_type);
        self.data[o] = self.data[o].checked_sub(delta).expect("VM count underflow");
    }

    #[inline]
    fn offset(&self, node: NodeId, vm_type: VmTypeId) -> usize {
        assert!(
            node.index() < self.n && vm_type.index() < self.m,
            "matrix index out of range"
        );
        node.index() * self.m + vm_type.index()
    }

    /// The row for `node` — its per-type counts.
    #[inline]
    pub fn row(&self, node: NodeId) -> &[u32] {
        assert!(node.index() < self.n, "matrix index out of range");
        &self.data[node.index() * self.m..(node.index() + 1) * self.m]
    }

    /// The row for `node` as a [`Request`] (the `L[i]` vector in the
    /// paper's `com(L[i], R)` operation).
    pub fn row_request(&self, node: NodeId) -> Request {
        Request::from_counts(self.row(node).to_vec())
    }

    /// Column sums: total count per VM type across all nodes. This is the
    /// availability vector `A_j = Σ_i L_ij` when applied to `L`.
    pub fn column_sums(&self) -> Request {
        let mut sums = vec![0u32; self.m];
        for row in self.data.chunks_exact(self.m.max(1)) {
            for (s, &v) in sums.iter_mut().zip(row) {
                *s = s.checked_add(v).expect("availability overflow");
            }
        }
        Request::from_counts(sums)
    }

    /// Total VMs on `node` across all types: `Σ_j C_ij`, the weight used by
    /// the cluster-distance metric.
    #[inline]
    pub fn node_total(&self, node: NodeId) -> u32 {
        self.row(node).iter().sum()
    }

    /// Total VM count in the whole matrix.
    pub fn total(&self) -> u64 {
        self.data.iter().map(|&v| u64::from(v)).sum()
    }

    /// Whether every entry is zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|&v| v == 0)
    }

    /// Elementwise `self[e] ≤ other[e]` for all entries (e.g. `C ≤ M`).
    ///
    /// # Panics
    /// Panics if dimensions differ.
    pub fn le(&self, other: &Self) -> bool {
        assert_eq!((self.n, self.m), (other.n, other.m), "dimension mismatch");
        self.data.iter().zip(&other.data).all(|(a, b)| a <= b)
    }

    /// Elementwise checked addition (e.g. merging an allocation into the
    /// global `C`).
    ///
    /// # Panics
    /// Panics if dimensions differ or on overflow.
    pub fn checked_add_assign(&mut self, other: &Self) {
        assert_eq!((self.n, self.m), (other.n, other.m), "dimension mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a = a.checked_add(b).expect("VM count overflow");
        }
    }

    /// Elementwise checked subtraction (e.g. releasing an allocation).
    ///
    /// # Panics
    /// Panics if dimensions differ or any entry would underflow.
    pub fn checked_sub_assign(&mut self, other: &Self) {
        assert_eq!((self.n, self.m), (other.n, other.m), "dimension mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a = a.checked_sub(b).expect("VM count underflow");
        }
    }

    /// Elementwise difference `self − other` (the paper's `L = M − C`).
    ///
    /// # Panics
    /// Panics if dimensions differ or any entry would underflow.
    pub fn saturating_diff(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.checked_sub_assign(other);
        out
    }

    /// Nodes hosting at least one VM, in id order.
    pub fn occupied_nodes(&self) -> Vec<NodeId> {
        (0..self.n)
            .filter(|&i| self.row(NodeId::from_index(i)).iter().any(|&v| v > 0))
            .map(NodeId::from_index)
            .collect()
    }

    /// Iterate over all non-zero entries as `(node, type, count)`.
    pub fn entries(&self) -> impl Iterator<Item = (NodeId, VmTypeId, u32)> + '_ {
        self.data
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v > 0)
            .map(move |(o, &v)| {
                (
                    NodeId::from_index(o / self.m),
                    VmTypeId::from_index(o % self.m),
                    v,
                )
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ResourceMatrix {
        ResourceMatrix::from_rows(&[vec![2, 2, 0], vec![0, 2, 0], vec![0, 0, 1]])
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = ResourceMatrix::zeros(2, 2);
        m.set(NodeId(1), VmTypeId(0), 5);
        assert_eq!(m.get(NodeId(1), VmTypeId(0)), 5);
        assert_eq!(m.get(NodeId(0), VmTypeId(0)), 0);
    }

    #[test]
    fn add_sub() {
        let mut m = ResourceMatrix::zeros(1, 1);
        m.add(NodeId(0), VmTypeId(0), 3);
        m.sub(NodeId(0), VmTypeId(0), 1);
        assert_eq!(m.get(NodeId(0), VmTypeId(0)), 2);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let mut m = ResourceMatrix::zeros(1, 1);
        m.sub(NodeId(0), VmTypeId(0), 1);
    }

    #[test]
    fn column_sums_is_availability() {
        let a = sample().column_sums();
        assert_eq!(a.counts(), &[2, 4, 1]);
    }

    #[test]
    fn node_total_and_total() {
        let m = sample();
        assert_eq!(m.node_total(NodeId(0)), 4);
        assert_eq!(m.node_total(NodeId(2)), 1);
        assert_eq!(m.total(), 7);
    }

    #[test]
    fn le_comparison() {
        let small = sample();
        let mut big = sample();
        big.add(NodeId(0), VmTypeId(2), 1);
        assert!(small.le(&big));
        assert!(!big.le(&small));
        assert!(small.le(&small));
    }

    #[test]
    fn add_sub_assign_roundtrip() {
        let base = sample();
        let mut acc = ResourceMatrix::zeros(3, 3);
        acc.checked_add_assign(&base);
        assert_eq!(acc, base);
        acc.checked_sub_assign(&base);
        assert!(acc.is_zero());
    }

    #[test]
    fn saturating_diff_is_l_equals_m_minus_c() {
        let m = sample();
        let mut c = ResourceMatrix::zeros(3, 3);
        c.set(NodeId(0), VmTypeId(0), 1);
        let l = m.saturating_diff(&c);
        assert_eq!(l.get(NodeId(0), VmTypeId(0)), 1);
        assert_eq!(l.get(NodeId(0), VmTypeId(1)), 2);
    }

    #[test]
    fn occupied_nodes() {
        let m = sample();
        assert_eq!(m.occupied_nodes(), vec![NodeId(0), NodeId(1), NodeId(2)]);
        let z = ResourceMatrix::zeros(3, 3);
        assert!(z.occupied_nodes().is_empty());
    }

    #[test]
    fn entries_nonzero_only() {
        let m = sample();
        let e: Vec<_> = m.entries().collect();
        assert_eq!(e.len(), 4);
        assert_eq!(e[0], (NodeId(0), VmTypeId(0), 2));
        assert_eq!(e[3], (NodeId(2), VmTypeId(2), 1));
    }

    #[test]
    fn row_request_matches_row() {
        let m = sample();
        assert_eq!(m.row_request(NodeId(0)).counts(), m.row(NodeId(0)));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn le_dimension_mismatch_panics() {
        let a = ResourceMatrix::zeros(2, 2);
        let b = ResourceMatrix::zeros(2, 3);
        let _ = a.le(&b);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn ragged_rows_rejected() {
        let _ = ResourceMatrix::from_rows(&[vec![1, 2], vec![3]]);
    }
}
