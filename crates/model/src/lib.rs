//! Resource model for virtual cluster provisioning (paper §II).
//!
//! The paper's decision data structures map onto this crate as follows:
//!
//! | Paper | Meaning | Here |
//! |---|---|---|
//! | `V_0..V_{m-1}` | VM types (Table I) | [`VmType`], [`VmCatalog`] |
//! | `R` (len `m`) | requested instances per type | [`Request`] |
//! | `A` (len `m`) | available instances per type | [`ClusterState::availability`] |
//! | `M` (`n × m`) | max instances per node per type | [`ResourceMatrix`] (capacity) |
//! | `C` (`n × m`) | currently allocated per node per type | [`ResourceMatrix`] (used), per-request [`Allocation`] |
//! | `L = M − C` | remaining per node per type | [`ClusterState::remaining`] |
//!
//! A request is admissible only if `R_j ≤ A_j` for all types `j`
//! ([`ClusterState::can_satisfy`]); callers that want the paper's
//! "refuse vs. queue" distinction compare against total capacity with
//! [`ClusterState::fits_capacity`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allocation;
mod catalog;
mod cluster;
mod error;
mod index;
mod matrix;
pub mod pricing;
mod request;
pub mod workload;

pub use allocation::Allocation;
pub use catalog::{VmCatalog, VmType, VmTypeId};
pub use cluster::ClusterState;
pub use error::ModelError;
pub use index::PlacementIndex;
pub use matrix::ResourceMatrix;
pub use pricing::PriceList;
pub use request::Request;
