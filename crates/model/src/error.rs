//! Errors for resource accounting.

use crate::Request;
use std::fmt;
use vc_topology::NodeId;

/// Errors raised by [`ClusterState`](crate::ClusterState) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The request asks for more of some type than the cloud's *total*
    /// capacity `M` — the paper refuses such requests outright.
    ExceedsCapacity {
        /// The offending request.
        request: Request,
        /// Total capacity per type.
        capacity: Request,
    },
    /// The request asks for more of some type than is *currently* available
    /// (`R_j > A_j`) — the paper queues such requests.
    InsufficientAvailability {
        /// The offending request.
        request: Request,
        /// Availability per type.
        available: Request,
    },
    /// An allocation would push a node past its remaining capacity.
    NodeOverCommit {
        /// The over-committed node.
        node: NodeId,
    },
    /// A release does not match what is currently allocated.
    ReleaseMismatch {
        /// The node whose allocation would underflow.
        node: NodeId,
    },
    /// Matrix/vector dimensions disagree with the cluster's `n × m`.
    DimensionMismatch,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ExceedsCapacity { request, capacity } => {
                write!(f, "request {request} exceeds total capacity {capacity}")
            }
            Self::InsufficientAvailability { request, available } => {
                write!(
                    f,
                    "request {request} exceeds current availability {available}"
                )
            }
            Self::NodeOverCommit { node } => {
                write!(f, "allocation over-commits node {node}")
            }
            Self::ReleaseMismatch { node } => {
                write!(f, "release does not match allocation on node {node}")
            }
            Self::DimensionMismatch => write!(f, "dimension mismatch"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let r = Request::from_counts(vec![5]);
        let a = Request::from_counts(vec![2]);
        let e = ModelError::InsufficientAvailability {
            request: r.clone(),
            available: a.clone(),
        };
        assert!(e.to_string().contains("availability"));
        let e = ModelError::ExceedsCapacity {
            request: r,
            capacity: a,
        };
        assert!(e.to_string().contains("capacity"));
        assert!(ModelError::NodeOverCommit { node: NodeId(3) }
            .to_string()
            .contains("N3"));
        assert!(ModelError::ReleaseMismatch { node: NodeId(1) }
            .to_string()
            .contains("N1"));
        assert_eq!(
            ModelError::DimensionMismatch.to_string(),
            "dimension mismatch"
        );
    }
}
