//! Incrementally maintained acceleration structures for the Algorithm-1
//! seed scan.
//!
//! The paper's online heuristic (§IV-A) repeatedly asks three questions
//! about the remaining matrix `L`:
//!
//! 1. how much can node `i` provide in total (`Σ_j L_ij`)?
//! 2. how much does rack `r` hold of each type (`Σ_{i∈r} L_ij`)?
//! 3. which rack members currently provide the most?
//!
//! Recomputing these inside the per-seed sort comparators makes the scan
//! `O(n²m log n)` per request. [`PlacementIndex`] keeps all three answers
//! up to date as [`ClusterState::allocate`](crate::ClusterState::allocate)
//! and [`ClusterState::release`](crate::ClusterState::release) run, so the
//! scan reads them in `O(1)`. It also caches two static per-node facts
//! about the distance matrix — the cheapest same-rack hop and the cheapest
//! cross-rack hop — which drive the admissible lower bound used to prune
//! seeds that cannot beat the incumbent.

use crate::ResourceMatrix;
use vc_topology::{NodeId, RackId, Topology};

/// Incremental per-node / per-rack aggregates over the remaining matrix
/// `L`, plus static distance minima, maintained by
/// [`ClusterState`](crate::ClusterState).
#[derive(Debug, Clone)]
pub struct PlacementIndex {
    num_types: usize,
    /// Rack index of each node (dense copy so updates avoid the topology).
    node_rack: Vec<usize>,
    /// Per-node free total `Σ_j L_ij`.
    node_free: Vec<u32>,
    /// Per-rack per-type free counts, row-major `racks × m`.
    rack_free: Vec<u32>,
    /// Per-rack members sorted by (free total descending, id ascending).
    rack_candidates: Vec<Vec<NodeId>>,
    /// Cheapest same-rack hop per node (`u32::MAX` when the node has no
    /// rack peer). Static: depends only on the topology.
    min_rack_dist: Vec<u32>,
    /// Cheapest cross-rack hop per node (`u32::MAX` when the whole cloud
    /// is one rack). Static: depends only on the topology.
    min_cross_dist: Vec<u32>,
    /// Per-type availability `A_j = Σ_i L_ij`.
    avail: Vec<u32>,
}

impl PlacementIndex {
    /// Build the index from scratch for a remaining matrix.
    pub fn build(topology: &Topology, remaining: &ResourceMatrix) -> Self {
        let n = topology.num_nodes();
        let m = remaining.num_types();
        let num_racks = topology.num_racks();
        let mut node_rack = vec![0usize; n];
        let mut node_free = vec![0u32; n];
        let mut rack_free = vec![0u32; num_racks * m];
        let mut avail = vec![0u32; m];
        for i in 0..n {
            let node = NodeId::from_index(i);
            let rack = topology.rack_of(node).index();
            node_rack[i] = rack;
            let row = remaining.row(node);
            for (j, &v) in row.iter().enumerate() {
                node_free[i] += v;
                rack_free[rack * m + j] += v;
                avail[j] = avail[j].checked_add(v).expect("availability overflow");
            }
        }
        let mut min_rack_dist = vec![u32::MAX; n];
        let mut min_cross_dist = vec![u32::MAX; n];
        for i in 0..n {
            let a = NodeId::from_index(i);
            for j in 0..n {
                if i == j {
                    continue;
                }
                let b = NodeId::from_index(j);
                let d = topology.distance(a, b);
                if node_rack[i] == node_rack[j] {
                    min_rack_dist[i] = min_rack_dist[i].min(d);
                } else {
                    min_cross_dist[i] = min_cross_dist[i].min(d);
                }
            }
        }
        let mut rack_candidates: Vec<Vec<NodeId>> =
            topology.racks().iter().map(|r| r.nodes.clone()).collect();
        for members in &mut rack_candidates {
            members.sort_by_key(|&i| (std::cmp::Reverse(node_free[i.index()]), i));
        }
        Self {
            num_types: m,
            node_rack,
            node_free,
            rack_free,
            rack_candidates,
            min_rack_dist,
            min_cross_dist,
            avail,
        }
    }

    /// Free total `Σ_j L_ij` for one node.
    #[inline]
    pub fn node_free_total(&self, node: NodeId) -> u32 {
        self.node_free[node.index()]
    }

    /// Per-type free counts for one rack (`m` entries).
    #[inline]
    pub fn rack_free(&self, rack: RackId) -> &[u32] {
        let m = self.num_types;
        &self.rack_free[rack.index() * m..(rack.index() + 1) * m]
    }

    /// Rack members ordered by (free total descending, id ascending).
    ///
    /// This is exactly the paper's `rackList` order when the outstanding
    /// request dominates every member's free counts, because then
    /// `providable(i) = Σ_j L_ij`.
    #[inline]
    pub fn rack_candidates(&self, rack: RackId) -> &[NodeId] {
        &self.rack_candidates[rack.index()]
    }

    /// Cheapest same-rack hop from `node`, or `None` if it has no rack
    /// peer.
    #[inline]
    pub fn min_same_rack_distance(&self, node: NodeId) -> Option<u32> {
        let d = self.min_rack_dist[node.index()];
        (d != u32::MAX).then_some(d)
    }

    /// Cheapest cross-rack hop from `node`, or `None` if the whole cloud
    /// is a single rack.
    #[inline]
    pub fn min_cross_rack_distance(&self, node: NodeId) -> Option<u32> {
        let d = self.min_cross_dist[node.index()];
        (d != u32::MAX).then_some(d)
    }

    /// Per-type availability vector `A` (`A_j = Σ_i L_ij`).
    #[inline]
    pub fn availability(&self) -> &[u32] {
        &self.avail
    }

    /// Fold an allocation delta into the aggregates. `allocate == true`
    /// subtracts the delta from the free counts, `false` adds it back.
    ///
    /// The caller (`ClusterState`) has already validated the delta against
    /// the remaining matrix, so the arithmetic here cannot under/overflow.
    pub(crate) fn record_delta(&mut self, delta: &ResourceMatrix, allocate: bool) {
        let m = self.num_types;
        let mut dirty_racks: Vec<usize> = Vec::new();
        for (node, ty, count) in delta.entries() {
            let i = node.index();
            let rack = self.node_rack[i];
            let slots = [
                &mut self.node_free[i],
                &mut self.rack_free[rack * m + ty.index()],
                &mut self.avail[ty.index()],
            ];
            for slot in slots {
                *slot = if allocate {
                    slot.checked_sub(count).expect("index underflow")
                } else {
                    slot.checked_add(count).expect("index overflow")
                };
            }
            if !dirty_racks.contains(&rack) {
                dirty_racks.push(rack);
            }
        }
        for rack in dirty_racks {
            self.resort_rack(rack);
        }
    }

    /// Replace one node's remaining row (`old` → `new`), e.g. on node
    /// failure or restoration. Distance minima are static and untouched.
    pub(crate) fn replace_row(&mut self, node: NodeId, old: &[u32], new: &[u32]) {
        let i = node.index();
        let rack = self.node_rack[i];
        let m = self.num_types;
        for j in 0..m {
            let (o, v) = (old[j], new[j]);
            self.node_free[i] = self.node_free[i] - o + v;
            self.rack_free[rack * m + j] = self.rack_free[rack * m + j] - o + v;
            self.avail[j] = self.avail[j] - o + v;
        }
        self.resort_rack(rack);
    }

    fn resort_rack(&mut self, rack: usize) {
        let free = &self.node_free;
        self.rack_candidates[rack].sort_by_key(|&i| (std::cmp::Reverse(free[i.index()]), i));
    }

    /// Non-panicking consistency audit for the health watchdog: recompute
    /// the free-capacity aggregates straight from the remaining matrix
    /// (O(nodes × types), no index rebuild, no distance recomputation)
    /// and describe every aggregate that drifted. Empty means consistent.
    pub fn check_consistent(&self, remaining: &ResourceMatrix) -> Vec<String> {
        let m = self.num_types;
        let mut node_free = vec![0u32; self.node_free.len()];
        let mut rack_free = vec![0u32; self.rack_free.len()];
        let mut avail = vec![0u32; m];
        for (node, ty, count) in remaining.entries() {
            let i = node.index();
            node_free[i] += count;
            rack_free[self.node_rack[i] * m + ty.index()] += count;
            avail[ty.index()] += count;
        }
        let mut violations = Vec::new();
        let mut diff = |label: &str, got: &[u32], want: &[u32]| {
            if let Some(i) = (0..got.len()).find(|&i| got[i] != want[i]) {
                violations.push(format!(
                    "{label}[{i}] drifted: index has {}, matrix says {}",
                    got[i], want[i]
                ));
            }
        };
        diff("node_free", &self.node_free, &node_free);
        diff("rack_free", &self.rack_free, &rack_free);
        diff("avail", &self.avail, &avail);
        violations
    }

    /// Panic unless every aggregate matches a from-scratch recomputation.
    /// Test support for the incremental-maintenance invariants.
    pub fn assert_consistent(&self, topology: &Topology, remaining: &ResourceMatrix) {
        let fresh = Self::build(topology, remaining);
        assert_eq!(self.node_free, fresh.node_free, "node_free drifted");
        assert_eq!(self.rack_free, fresh.rack_free, "rack_free drifted");
        assert_eq!(self.avail, fresh.avail, "availability drifted");
        assert_eq!(
            self.rack_candidates, fresh.rack_candidates,
            "candidate order drifted"
        );
        assert_eq!(self.min_rack_dist, fresh.min_rack_dist);
        assert_eq!(self.min_cross_dist, fresh.min_cross_dist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_topology::{generate, DistanceTiers};

    fn topo() -> Topology {
        generate::uniform(2, 3, DistanceTiers::default())
    }

    fn remaining() -> ResourceMatrix {
        ResourceMatrix::from_rows(&[
            vec![2, 0, 1],
            vec![0, 3, 0],
            vec![1, 1, 1],
            vec![0, 0, 0],
            vec![4, 0, 0],
            vec![1, 2, 0],
        ])
    }

    #[test]
    fn build_aggregates_match_matrix() {
        let t = topo();
        let l = remaining();
        let idx = PlacementIndex::build(&t, &l);
        assert_eq!(idx.node_free_total(NodeId(0)), 3);
        assert_eq!(idx.node_free_total(NodeId(3)), 0);
        assert_eq!(idx.rack_free(RackId(0)), &[3, 4, 2]);
        assert_eq!(idx.rack_free(RackId(1)), &[5, 2, 0]);
        assert_eq!(idx.availability(), &[8, 6, 2]);
    }

    #[test]
    fn candidates_sorted_by_free_then_id() {
        let t = topo();
        let idx = PlacementIndex::build(&t, &remaining());
        // rack 0: totals are n0=3, n1=3, n2=3 -> tie broken by id
        assert_eq!(
            idx.rack_candidates(RackId(0)),
            &[NodeId(0), NodeId(1), NodeId(2)]
        );
        // rack 1: n4=4, n5=3, n3=0
        assert_eq!(
            idx.rack_candidates(RackId(1)),
            &[NodeId(4), NodeId(5), NodeId(3)]
        );
    }

    #[test]
    fn distance_minima() {
        let t = topo();
        let idx = PlacementIndex::build(&t, &remaining());
        let tiers = t.tiers();
        for i in t.node_ids() {
            assert_eq!(idx.min_same_rack_distance(i), Some(tiers.same_rack));
            assert_eq!(idx.min_cross_rack_distance(i), Some(tiers.cross_rack));
        }
    }

    #[test]
    fn single_node_rack_has_no_peer_distance() {
        let t = generate::heterogeneous(&[1, 2], DistanceTiers::default());
        let idx = PlacementIndex::build(&t, &ResourceMatrix::zeros(3, 2));
        assert_eq!(idx.min_same_rack_distance(NodeId(0)), None);
        assert!(idx.min_cross_rack_distance(NodeId(0)).is_some());
    }

    #[test]
    fn record_delta_keeps_aggregates_consistent() {
        let t = topo();
        let mut l = remaining();
        let mut idx = PlacementIndex::build(&t, &l);
        let delta = ResourceMatrix::from_rows(&[
            vec![2, 0, 0],
            vec![0, 1, 0],
            vec![0, 0, 0],
            vec![0, 0, 0],
            vec![3, 0, 0],
            vec![0, 0, 0],
        ]);
        idx.record_delta(&delta, true);
        l.checked_sub_assign(&delta);
        idx.assert_consistent(&t, &l);
        // rack 1 order flips: n4 drops to 1, n5 stays at 3
        assert_eq!(
            idx.rack_candidates(RackId(1)),
            &[NodeId(5), NodeId(4), NodeId(3)]
        );
        idx.record_delta(&delta, false);
        l.checked_add_assign(&delta);
        idx.assert_consistent(&t, &l);
    }

    #[test]
    fn check_consistent_reports_drift_without_panicking() {
        let t = topo();
        let l = remaining();
        let mut idx = PlacementIndex::build(&t, &l);
        assert!(idx.check_consistent(&l).is_empty());
        // Corrupt one aggregate per family; every drift is reported.
        idx.node_free[2] += 1;
        idx.rack_free[0] += 1;
        idx.avail[1] = 0;
        let violations = idx.check_consistent(&l);
        assert_eq!(violations.len(), 3, "{violations:?}");
        assert!(violations[0].contains("node_free[2]"), "{violations:?}");
        assert!(violations[1].contains("rack_free[0]"), "{violations:?}");
        assert!(violations[2].contains("avail[1]"), "{violations:?}");
    }

    #[test]
    fn replace_row_rebuilds_rack_order() {
        let t = topo();
        let mut l = remaining();
        let mut idx = PlacementIndex::build(&t, &l);
        let old = l.row(NodeId(4)).to_vec();
        for (j, v) in [0u32, 0, 0].into_iter().enumerate() {
            l.set(NodeId(4), crate::VmTypeId::from_index(j), v);
        }
        idx.replace_row(NodeId(4), &old, &[0, 0, 0]);
        idx.assert_consistent(&t, &l);
        assert_eq!(idx.node_free_total(NodeId(4)), 0);
    }
}
