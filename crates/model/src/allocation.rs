//! A per-request allocation: a `C` matrix plus its central node.

use crate::{Request, ResourceMatrix, VmTypeId};
use serde::{Deserialize, Serialize};
use vc_topology::{NodeId, Topology};

/// The result of provisioning one request: which node hosts how many VMs of
/// each type, and which node acts as the *central node* (`N_k`) — the
/// master of the MapReduce virtual cluster.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    matrix: ResourceMatrix,
    center: NodeId,
}

impl Allocation {
    /// Bundle an allocation matrix with its central node.
    ///
    /// # Panics
    /// Panics if `center` is out of range for the matrix.
    pub fn new(matrix: ResourceMatrix, center: NodeId) -> Self {
        assert!(
            center.index() < matrix.num_nodes(),
            "central node out of range"
        );
        Self { matrix, center }
    }

    /// The allocation matrix `C`.
    #[inline]
    pub fn matrix(&self) -> &ResourceMatrix {
        &self.matrix
    }

    /// Mutable access to the allocation matrix (used by the Theorem-2
    /// exchange step, which moves VMs between clusters).
    #[inline]
    pub fn matrix_mut(&mut self) -> &mut ResourceMatrix {
        &mut self.matrix
    }

    /// The central node `N_k`.
    #[inline]
    pub fn center(&self) -> NodeId {
        self.center
    }

    /// Re-designate the central node.
    ///
    /// # Panics
    /// Panics if `center` is out of range.
    pub fn set_center(&mut self, center: NodeId) {
        assert!(
            center.index() < self.matrix.num_nodes(),
            "central node out of range"
        );
        self.center = center;
    }

    /// Total VMs in this cluster.
    pub fn total_vms(&self) -> u64 {
        self.matrix.total()
    }

    /// Whether this allocation delivers exactly the requested counts
    /// (`Σ_i C_ij = R_j` for all `j`).
    pub fn satisfies(&self, request: &Request) -> bool {
        self.matrix.column_sums() == *request
    }

    /// Expand to individual VM placements `(node, type)`, one entry per VM,
    /// ordered by node then type. This is how the MapReduce simulator
    /// instantiates the virtual cluster.
    pub fn placements(&self) -> Vec<(NodeId, VmTypeId)> {
        let mut out = Vec::with_capacity(self.total_vms() as usize);
        for (node, ty, count) in self.matrix.entries() {
            for _ in 0..count {
                out.push((node, ty));
            }
        }
        out
    }

    /// Number of distinct physical nodes hosting at least one VM.
    pub fn span(&self) -> usize {
        self.matrix.occupied_nodes().len()
    }

    /// Number of distinct racks hosting at least one VM.
    pub fn rack_span(&self, topo: &Topology) -> usize {
        let mut racks: Vec<_> = self
            .matrix
            .occupied_nodes()
            .iter()
            .map(|&n| topo.rack_of(n))
            .collect();
        racks.sort_unstable();
        racks.dedup();
        racks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_topology::{generate, DistanceTiers};

    fn sample() -> Allocation {
        // Fig. 1's DC1 allocation: N0 hosts 2·V0+2·V1, N1 hosts 2·V1, N2 hosts 1·V2.
        Allocation::new(
            ResourceMatrix::from_rows(&[vec![2, 2, 0], vec![0, 2, 0], vec![0, 0, 1]]),
            NodeId(0),
        )
    }

    #[test]
    fn satisfies_request() {
        let a = sample();
        assert!(a.satisfies(&Request::from_counts(vec![2, 4, 1])));
        assert!(!a.satisfies(&Request::from_counts(vec![2, 4, 2])));
    }

    #[test]
    fn placements_one_per_vm() {
        let a = sample();
        let p = a.placements();
        assert_eq!(p.len(), 7);
        assert_eq!(p[0], (NodeId(0), VmTypeId(0)));
        assert_eq!(p[6], (NodeId(2), VmTypeId(2)));
        assert_eq!(p.iter().filter(|&&(_, t)| t == VmTypeId(1)).count(), 4);
    }

    #[test]
    fn span_counts_nodes_and_racks() {
        let a = sample();
        assert_eq!(a.span(), 3);
        let topo = generate::uniform(2, 2, DistanceTiers::default());
        // nodes 0,1 in rack 0; node 2 in rack 1
        assert_eq!(a.rack_span(&topo), 2);
    }

    #[test]
    fn set_center() {
        let mut a = sample();
        a.set_center(NodeId(2));
        assert_eq!(a.center(), NodeId(2));
    }

    #[test]
    #[should_panic(expected = "central node out of range")]
    fn center_out_of_range_panics() {
        let _ = Allocation::new(ResourceMatrix::zeros(2, 1), NodeId(5));
    }

    #[test]
    fn total_vms() {
        assert_eq!(sample().total_vms(), 7);
    }
}
