//! Random workload generation for the paper's simulations (§V-A).
//!
//! The paper simulates a cloud of 3 racks × 10 nodes where "the instances
//! on each physical node are distributed randomly" and "the types and
//! numbers of the twenty requests are also generated randomly". Two request
//! scenarios are compared for Figs. 5–6: the default sizes, and a sequence
//! "with a relatively small number of VMs".

use crate::{ClusterState, Request, ResourceMatrix, VmCatalog};
use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use std::sync::Arc;
use vc_topology::Topology;

/// Parameters for random request generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestProfile {
    /// Inclusive lower bound on the count for each VM type.
    pub min_per_type: u32,
    /// Inclusive upper bound on the count for each VM type.
    pub max_per_type: u32,
    /// Probability (in percent, 0–100) that a type appears in the request
    /// at all; sampled independently per type. A request that would come
    /// out empty is re-rolled with all types present.
    pub type_presence_pct: u32,
}

impl RequestProfile {
    /// The default simulation scenario (Fig. 5): moderately large clusters,
    /// 1–6 instances of each requested type.
    pub fn standard() -> Self {
        Self {
            min_per_type: 1,
            max_per_type: 6,
            type_presence_pct: 80,
        }
    }

    /// The "relatively small number of VMs" scenario (Fig. 6): half the
    /// standard instance counts, sparser types. Small-but-not-trivial
    /// clusters span a few nodes, which is where the Theorem-2 exchange
    /// pass has the most room to help (the paper reports 12 % vs 2 %).
    pub fn small() -> Self {
        Self {
            min_per_type: 1,
            max_per_type: 3,
            type_presence_pct: 70,
        }
    }

    /// Sample one request over `m` VM types.
    ///
    /// # Panics
    /// Panics if `min_per_type > max_per_type` or `m == 0`.
    pub fn sample(&self, m: usize, rng: &mut impl Rng) -> Request {
        assert!(m > 0, "need at least one VM type");
        assert!(
            self.min_per_type <= self.max_per_type,
            "invalid per-type range"
        );
        let count_dist = Uniform::new_inclusive(self.min_per_type, self.max_per_type);
        loop {
            let counts: Vec<u32> = (0..m)
                .map(|_| {
                    if rng.gen_range(0..100) < self.type_presence_pct {
                        count_dist.sample(rng)
                    } else {
                        0
                    }
                })
                .collect();
            let r = Request::from_counts(counts);
            if !r.is_zero() {
                return r;
            }
        }
    }

    /// Sample a batch of requests (the paper uses twenty).
    pub fn sample_many(&self, m: usize, count: usize, rng: &mut impl Rng) -> Vec<Request> {
        (0..count).map(|_| self.sample(m, rng)).collect()
    }
}

/// Randomly distribute instance capacity over the nodes of a topology:
/// every `(node, type)` cell gets `0..=max_per_cell` slots, uniformly.
pub fn random_capacity(
    topo: &Topology,
    catalog: &VmCatalog,
    max_per_cell: u32,
    rng: &mut impl Rng,
) -> ResourceMatrix {
    let dist = Uniform::new_inclusive(0, max_per_cell);
    let rows: Vec<Vec<u32>> = (0..topo.num_nodes())
        .map(|_| (0..catalog.len()).map(|_| dist.sample(rng)).collect())
        .collect();
    ResourceMatrix::from_rows(&rows)
}

/// Build the paper's simulated cloud: 3 racks × 10 nodes, Table-I VM types,
/// random per-node capacities of up to `max_per_cell` instances per type.
pub fn paper_simulation_cloud(max_per_cell: u32, rng: &mut impl Rng) -> ClusterState {
    let topo = Arc::new(vc_topology::generate::paper_simulation());
    let catalog = Arc::new(VmCatalog::ec2_table1());
    let capacity = random_capacity(&topo, &catalog, max_per_cell, rng);
    ClusterState::new(topo, catalog, capacity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_within_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = RequestProfile::standard();
        for _ in 0..100 {
            let r = p.sample(3, &mut rng);
            assert!(!r.is_zero());
            for &c in r.counts() {
                assert!(c <= p.max_per_type);
            }
        }
    }

    #[test]
    fn small_profile_smaller_on_average() {
        let mut rng = StdRng::seed_from_u64(7);
        let std_total: u32 = RequestProfile::standard()
            .sample_many(3, 200, &mut rng)
            .iter()
            .map(Request::total_vms)
            .sum();
        let small_total: u32 = RequestProfile::small()
            .sample_many(3, 200, &mut rng)
            .iter()
            .map(Request::total_vms)
            .sum();
        assert!(small_total < std_total);
    }

    #[test]
    fn deterministic_given_seed() {
        let p = RequestProfile::standard();
        let a = p.sample_many(3, 20, &mut StdRng::seed_from_u64(42));
        let b = p.sample_many(3, 20, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn random_capacity_within_bounds() {
        let topo = vc_topology::generate::paper_simulation();
        let cat = VmCatalog::ec2_table1();
        let mut rng = StdRng::seed_from_u64(1);
        let cap = random_capacity(&topo, &cat, 3, &mut rng);
        assert_eq!(cap.num_nodes(), 30);
        assert_eq!(cap.num_types(), 3);
        for node in topo.node_ids() {
            for &v in cap.row(node) {
                assert!(v <= 3);
            }
        }
    }

    #[test]
    fn paper_cloud_shape() {
        let mut rng = StdRng::seed_from_u64(9);
        let s = paper_simulation_cloud(3, &mut rng);
        assert_eq!(s.num_nodes(), 30);
        assert_eq!(s.num_types(), 3);
        assert_eq!(s.topology().num_racks(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one VM type")]
    fn zero_types_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = RequestProfile::standard().sample(0, &mut rng);
    }
}
