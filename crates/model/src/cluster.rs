//! Cloud-wide resource accounting: capacity `M`, usage `C`, remaining `L`.

use crate::{Allocation, ModelError, PlacementIndex, Request, ResourceMatrix, VmCatalog};
use std::sync::Arc;
use vc_topology::{NodeId, Topology};

/// The provider-side view of the cloud: the physical [`Topology`], the VM
/// [`VmCatalog`], the per-node capacity matrix `M`, and the aggregate
/// allocation matrix `C` (sum of all live allocations).
///
/// Invariant: `C ≤ M` elementwise at all times; `L = M − C` and the
/// [`PlacementIndex`] aggregates are maintained incrementally alongside
/// every mutation, so [`remaining`](Self::remaining) and
/// [`index`](Self::index) are free to read.
#[derive(Debug, Clone)]
pub struct ClusterState {
    topology: Arc<Topology>,
    catalog: Arc<VmCatalog>,
    capacity: ResourceMatrix,
    used: ResourceMatrix,
    remaining: ResourceMatrix,
    index: PlacementIndex,
}

impl ClusterState {
    /// Create a cluster with the given capacity matrix and nothing
    /// allocated.
    ///
    /// # Panics
    /// Panics if the capacity matrix dimensions disagree with the topology
    /// node count or catalogue type count.
    pub fn new(topology: Arc<Topology>, catalog: Arc<VmCatalog>, capacity: ResourceMatrix) -> Self {
        assert_eq!(
            capacity.num_nodes(),
            topology.num_nodes(),
            "capacity rows != node count"
        );
        assert_eq!(
            capacity.num_types(),
            catalog.len(),
            "capacity cols != type count"
        );
        let used = ResourceMatrix::zeros(capacity.num_nodes(), capacity.num_types());
        let remaining = capacity.clone();
        let index = PlacementIndex::build(&topology, &remaining);
        Self {
            topology,
            catalog,
            capacity,
            used,
            remaining,
            index,
        }
    }

    /// A cluster where every node can host `per_node` instances of every
    /// type.
    pub fn uniform_capacity(
        topology: Arc<Topology>,
        catalog: Arc<VmCatalog>,
        per_node: u32,
    ) -> Self {
        let cap =
            ResourceMatrix::from_rows(&vec![vec![per_node; catalog.len()]; topology.num_nodes()]);
        Self::new(topology, catalog, cap)
    }

    /// The physical topology.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Shared handle to the topology.
    #[inline]
    pub fn topology_arc(&self) -> Arc<Topology> {
        Arc::clone(&self.topology)
    }

    /// The VM type catalogue.
    #[inline]
    pub fn catalog(&self) -> &VmCatalog {
        &self.catalog
    }

    /// Shared handle to the catalogue.
    #[inline]
    pub fn catalog_arc(&self) -> Arc<VmCatalog> {
        Arc::clone(&self.catalog)
    }

    /// Number of physical nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.topology.num_nodes()
    }

    /// Number of VM types `m`.
    #[inline]
    pub fn num_types(&self) -> usize {
        self.catalog.len()
    }

    /// The capacity matrix `M`.
    #[inline]
    pub fn capacity(&self) -> &ResourceMatrix {
        &self.capacity
    }

    /// The aggregate allocation matrix `C`.
    #[inline]
    pub fn used(&self) -> &ResourceMatrix {
        &self.used
    }

    /// The remaining matrix `L = M − C`, maintained incrementally.
    #[inline]
    pub fn remaining(&self) -> &ResourceMatrix {
        &self.remaining
    }

    /// The incrementally maintained [`PlacementIndex`] over `L`.
    #[inline]
    pub fn index(&self) -> &PlacementIndex {
        &self.index
    }

    /// The availability vector `A` (`A_j = Σ_i L_ij`).
    pub fn availability(&self) -> Request {
        Request::from_counts(self.index.availability().to_vec())
    }

    /// Whether the request could *ever* be satisfied (`R_j ≤ Σ_i M_ij`).
    /// The paper refuses requests failing this test.
    pub fn fits_capacity(&self, request: &Request) -> bool {
        request.num_types() == self.num_types() && request.le(&self.capacity.column_sums())
    }

    /// Whether the request can be satisfied *now* (`R_j ≤ A_j`). The paper
    /// queues requests failing this test (but passing
    /// [`fits_capacity`](Self::fits_capacity)).
    pub fn can_satisfy(&self, request: &Request) -> bool {
        request.num_types() == self.num_types() && request.le(&self.availability())
    }

    /// Commit an allocation, consuming resources.
    ///
    /// Validates dimensions and per-node remaining capacity; on error the
    /// state is unchanged.
    pub fn allocate(&mut self, allocation: &Allocation) -> Result<(), ModelError> {
        let m = allocation.matrix();
        if m.num_nodes() != self.num_nodes() || m.num_types() != self.num_types() {
            return Err(ModelError::DimensionMismatch);
        }
        for (node, ty, count) in m.entries() {
            if count > self.remaining.get(node, ty) {
                return Err(ModelError::NodeOverCommit { node });
            }
        }
        self.used.checked_add_assign(m);
        self.remaining.checked_sub_assign(m);
        self.index.record_delta(m, true);
        Ok(())
    }

    /// Release a previously committed allocation, freeing resources.
    ///
    /// Validates that the release does not underflow any node; on error the
    /// state is unchanged.
    pub fn release(&mut self, allocation: &Allocation) -> Result<(), ModelError> {
        let m = allocation.matrix();
        if m.num_nodes() != self.num_nodes() || m.num_types() != self.num_types() {
            return Err(ModelError::DimensionMismatch);
        }
        for (node, ty, count) in m.entries() {
            if count > self.used.get(node, ty) {
                return Err(ModelError::ReleaseMismatch { node });
            }
        }
        self.used.checked_sub_assign(m);
        self.remaining.checked_add_assign(m);
        self.index.record_delta(m, false);
        Ok(())
    }

    /// Fraction of total VM slots currently allocated, in `[0, 1]`.
    /// Returns 0 for a zero-capacity cloud.
    pub fn utilization(&self) -> f64 {
        let cap = self.capacity.total();
        if cap == 0 {
            0.0
        } else {
            self.used.total() as f64 / cap as f64
        }
    }

    /// Take a physical node out of service: its capacity drops to zero and
    /// any VMs it was running are lost. Returns the per-type counts that
    /// were running there, so the provider can repair the affected
    /// allocations (see `vc-placement`'s migration module).
    ///
    /// The paper lists this as future work ("how to compute \[distances\]
    /// when some VMs are down or reconfigured is critical for the VM
    /// placement policy" — §VII).
    pub fn fail_node(&mut self, node: NodeId) -> Request {
        let old_remaining = self.remaining.row(node).to_vec();
        let mut lost = Vec::with_capacity(self.num_types());
        for j in 0..self.num_types() {
            let t = crate::VmTypeId::from_index(j);
            lost.push(self.used.get(node, t));
            self.used.set(node, t, 0);
            self.capacity.set(node, t, 0);
            self.remaining.set(node, t, 0);
        }
        self.index
            .replace_row(node, &old_remaining, &vec![0; self.num_types()]);
        Request::from_counts(lost)
    }

    /// Return a previously failed (or reconfigured) node to service with
    /// the given per-type capacity. Nothing is scheduled onto it until a
    /// placement decision does so.
    ///
    /// # Panics
    /// Panics if `capacity` has the wrong number of types.
    pub fn restore_node(&mut self, node: NodeId, capacity: &Request) {
        assert_eq!(
            capacity.num_types(),
            self.num_types(),
            "type count mismatch"
        );
        let old_remaining = self.remaining.row(node).to_vec();
        for (j, &c) in capacity.counts().iter().enumerate() {
            let t = crate::VmTypeId::from_index(j);
            assert_eq!(self.used.get(node, t), 0, "restoring a node with live VMs");
            self.capacity.set(node, t, c);
            self.remaining.set(node, t, c);
        }
        self.index
            .replace_row(node, &old_remaining, capacity.counts());
    }

    /// Remaining capacity on one node as a [`Request`] vector (`L[i]`).
    pub fn remaining_at(&self, node: NodeId) -> Request {
        Request::from_counts(self.remaining.row(node).to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VmTypeId;
    use vc_topology::{generate, DistanceTiers};

    fn state() -> ClusterState {
        let topo = Arc::new(generate::uniform(2, 2, DistanceTiers::default()));
        let cat = Arc::new(VmCatalog::ec2_table1());
        ClusterState::uniform_capacity(topo, cat, 2)
    }

    fn alloc(rows: &[Vec<u32>]) -> Allocation {
        Allocation::new(ResourceMatrix::from_rows(rows), NodeId(0))
    }

    #[test]
    fn fresh_state_fully_available() {
        let s = state();
        assert_eq!(s.availability().counts(), &[8, 8, 8]);
        assert_eq!(s.utilization(), 0.0);
        assert!(*s.remaining() == *s.capacity());
    }

    #[test]
    fn allocate_then_release_roundtrip() {
        let mut s = state();
        let a = alloc(&[vec![1, 0, 0], vec![0, 2, 0], vec![0, 0, 0], vec![0, 0, 1]]);
        s.allocate(&a).unwrap();
        assert_eq!(s.availability().counts(), &[7, 6, 7]);
        assert!(s.utilization() > 0.0);
        s.release(&a).unwrap();
        assert_eq!(s.availability().counts(), &[8, 8, 8]);
    }

    #[test]
    fn overcommit_rejected_atomically() {
        let mut s = state();
        let a = alloc(&[vec![3, 0, 0], vec![0, 0, 0], vec![0, 0, 0], vec![0, 0, 0]]);
        let err = s.allocate(&a).unwrap_err();
        assert_eq!(err, ModelError::NodeOverCommit { node: NodeId(0) });
        // state unchanged
        assert_eq!(s.used().total(), 0);
    }

    #[test]
    fn release_mismatch_rejected() {
        let mut s = state();
        let a = alloc(&[vec![1, 0, 0], vec![0, 0, 0], vec![0, 0, 0], vec![0, 0, 0]]);
        let err = s.release(&a).unwrap_err();
        assert_eq!(err, ModelError::ReleaseMismatch { node: NodeId(0) });
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut s = state();
        let a = Allocation::new(ResourceMatrix::zeros(2, 3), NodeId(0));
        assert_eq!(s.allocate(&a).unwrap_err(), ModelError::DimensionMismatch);
        assert_eq!(s.release(&a).unwrap_err(), ModelError::DimensionMismatch);
    }

    #[test]
    fn fits_capacity_vs_can_satisfy() {
        let mut s = state();
        // fill node 0's type-0 slots
        let a = alloc(&[vec![2, 0, 0], vec![2, 0, 0], vec![2, 0, 0], vec![2, 0, 0]]);
        s.allocate(&a).unwrap();
        let r = Request::from_counts(vec![1, 0, 0]);
        assert!(s.fits_capacity(&r)); // M allows it
        assert!(!s.can_satisfy(&r)); // but L is exhausted -> queue
    }

    #[test]
    fn wrong_length_request_never_satisfiable() {
        let s = state();
        let r = Request::from_counts(vec![1]);
        assert!(!s.fits_capacity(&r));
        assert!(!s.can_satisfy(&r));
    }

    #[test]
    fn remaining_at_node() {
        let mut s = state();
        let a = alloc(&[vec![1, 2, 0], vec![0, 0, 0], vec![0, 0, 0], vec![0, 0, 0]]);
        s.allocate(&a).unwrap();
        assert_eq!(s.remaining_at(NodeId(0)).counts(), &[1, 0, 2]);
        assert_eq!(s.remaining_at(NodeId(1)).counts(), &[2, 2, 2]);
    }

    #[test]
    fn fail_node_drops_capacity_and_reports_losses() {
        let mut s = state();
        let a = alloc(&[vec![1, 2, 0], vec![0, 0, 0], vec![0, 0, 0], vec![0, 0, 0]]);
        s.allocate(&a).unwrap();
        let lost = s.fail_node(NodeId(0));
        assert_eq!(lost.counts(), &[1, 2, 0]);
        assert_eq!(s.remaining_at(NodeId(0)).counts(), &[0, 0, 0]);
        assert_eq!(s.capacity().row(NodeId(0)), &[0, 0, 0]);
        // Other nodes untouched.
        assert_eq!(s.remaining_at(NodeId(1)).counts(), &[2, 2, 2]);
    }

    #[test]
    fn restore_node_brings_capacity_back() {
        let mut s = state();
        s.fail_node(NodeId(2));
        s.restore_node(NodeId(2), &Request::from_counts(vec![1, 1, 1]));
        assert_eq!(s.remaining_at(NodeId(2)).counts(), &[1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "live VMs")]
    fn restore_busy_node_panics() {
        let mut s = state();
        let a = alloc(&[vec![1, 0, 0], vec![0, 0, 0], vec![0, 0, 0], vec![0, 0, 0]]);
        s.allocate(&a).unwrap();
        s.restore_node(NodeId(0), &Request::from_counts(vec![2, 2, 2]));
    }

    #[test]
    fn index_stays_consistent_through_mutations() {
        let mut s = state();
        let a = alloc(&[vec![1, 2, 0], vec![0, 1, 1], vec![0, 0, 0], vec![2, 0, 0]]);
        s.allocate(&a).unwrap();
        s.index().assert_consistent(s.topology(), s.remaining());
        s.release(&a).unwrap();
        s.index().assert_consistent(s.topology(), s.remaining());
        s.fail_node(NodeId(1));
        s.index().assert_consistent(s.topology(), s.remaining());
        s.restore_node(NodeId(1), &Request::from_counts(vec![1, 0, 2]));
        s.index().assert_consistent(s.topology(), s.remaining());
    }

    #[test]
    fn availability_matches_remaining_column_sums() {
        let mut s = state();
        let a = alloc(&[vec![1, 1, 1], vec![1, 0, 0], vec![0, 0, 0], vec![0, 0, 0]]);
        s.allocate(&a).unwrap();
        assert_eq!(s.availability(), s.remaining().column_sums());
        let _ = VmTypeId(0);
    }
}
