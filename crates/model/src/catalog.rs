//! VM instance types and the catalogue of available types (paper Table I).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a VM type (`V_j` in the paper), a dense index into a
/// [`VmCatalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct VmTypeId(pub u32);

impl VmTypeId {
    /// The raw index as a `usize`, for matrix offsets.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize` index.
    ///
    /// # Panics
    /// Panics if `i` exceeds `u32::MAX`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        Self(u32::try_from(i).expect("index exceeds u32::MAX"))
    }
}

impl fmt::Display for VmTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V{}", self.0)
    }
}

/// One VM instance type.
///
/// The first five fields reproduce Table I of the paper (Amazon EC2
/// instances); the remaining fields parameterise the MapReduce performance
/// model in `vc-mapreduce` (slots and per-VM processing rates), scaled with
/// compute units as Hadoop deployments commonly configure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmType {
    /// Dense index of this type in its catalogue.
    pub id: VmTypeId,
    /// Human-readable name (e.g. `"small"`).
    pub name: String,
    /// Memory, in megabytes (Table I reports GB; 1.7 GB → 1740 MB).
    pub memory_mb: u32,
    /// EC2 compute units.
    pub compute_units: u32,
    /// Instance storage, in gigabytes.
    pub storage_gb: u32,
    /// Platform word size in bits (32 or 64).
    pub platform_bits: u8,
    /// Concurrent map task slots this VM offers.
    pub map_slots: u32,
    /// Concurrent reduce task slots this VM offers.
    pub reduce_slots: u32,
    /// CPU processing rate for map/reduce work, MB of input per second.
    pub cpu_mb_per_s: u32,
    /// Local disk streaming rate, MB per second.
    pub disk_mb_per_s: u32,
}

/// An ordered catalogue of VM types; index = [`VmTypeId`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmCatalog {
    types: Vec<VmType>,
}

impl VmCatalog {
    /// Build a catalogue from types; ids are (re)assigned densely in order.
    ///
    /// # Panics
    /// Panics if `types` is empty.
    pub fn new(mut types: Vec<VmType>) -> Self {
        assert!(
            !types.is_empty(),
            "catalogue must contain at least one VM type"
        );
        for (i, t) in types.iter_mut().enumerate() {
            t.id = VmTypeId::from_index(i);
        }
        Self { types }
    }

    /// The paper's Table I: Amazon EC2 `small` (V1), `medium` (V2), and
    /// `large` (V3) instances.
    ///
    /// Slots/rates scale with compute units: 1 map slot and 25 MB/s of CPU
    /// throughput per compute unit, one reduce slot per instance plus one
    /// extra for the large type, and 60–100 MB/s disks.
    pub fn ec2_table1() -> Self {
        Self::new(vec![
            VmType {
                id: VmTypeId(0),
                name: "small".into(),
                memory_mb: 1740,
                compute_units: 1,
                storage_gb: 160,
                platform_bits: 32,
                map_slots: 1,
                reduce_slots: 1,
                cpu_mb_per_s: 25,
                disk_mb_per_s: 60,
            },
            VmType {
                id: VmTypeId(1),
                name: "medium".into(),
                memory_mb: 3840,
                compute_units: 2,
                storage_gb: 410,
                platform_bits: 64,
                map_slots: 2,
                reduce_slots: 1,
                cpu_mb_per_s: 50,
                disk_mb_per_s: 80,
            },
            VmType {
                id: VmTypeId(2),
                name: "large".into(),
                memory_mb: 7680,
                compute_units: 4,
                storage_gb: 850,
                platform_bits: 64,
                map_slots: 4,
                reduce_slots: 2,
                cpu_mb_per_s: 100,
                disk_mb_per_s: 100,
            },
        ])
    }

    /// A single-type catalogue, convenient for tests and homogeneous sims.
    pub fn single(name: &str) -> Self {
        let mut t = Self::ec2_table1().types.swap_remove(0);
        t.name = name.into();
        Self::new(vec![t])
    }

    /// Number of VM types (`m` in the paper).
    #[inline]
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether the catalogue is empty (never true: construction forbids it).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Look up a type by id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn get(&self, id: VmTypeId) -> &VmType {
        &self.types[id.index()]
    }

    /// Look up a type by name.
    pub fn by_name(&self, name: &str) -> Option<&VmType> {
        self.types.iter().find(|t| t.name == name)
    }

    /// All types in id order.
    #[inline]
    pub fn types(&self) -> &[VmType] {
        &self.types
    }

    /// Iterator over all type ids, `0..m`.
    pub fn type_ids(&self) -> impl ExactSizeIterator<Item = VmTypeId> + Clone {
        (0..self.types.len() as u32).map(VmTypeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let c = VmCatalog::ec2_table1();
        assert_eq!(c.len(), 3);
        let small = c.by_name("small").unwrap();
        assert_eq!(small.memory_mb, 1740);
        assert_eq!(small.compute_units, 1);
        assert_eq!(small.storage_gb, 160);
        assert_eq!(small.platform_bits, 32);
        let large = c.by_name("large").unwrap();
        assert_eq!(large.compute_units, 4);
        assert_eq!(large.storage_gb, 850);
        assert_eq!(large.platform_bits, 64);
    }

    #[test]
    fn ids_dense_in_order() {
        let c = VmCatalog::ec2_table1();
        for (i, t) in c.types().iter().enumerate() {
            assert_eq!(t.id.index(), i);
        }
        assert_eq!(c.get(VmTypeId(1)).name, "medium");
    }

    #[test]
    fn by_name_missing() {
        assert!(VmCatalog::ec2_table1().by_name("xlarge").is_none());
    }

    #[test]
    fn new_reassigns_ids() {
        let mut types = VmCatalog::ec2_table1().types().to_vec();
        types.reverse();
        let c = VmCatalog::new(types);
        assert_eq!(c.get(VmTypeId(0)).name, "large");
        assert_eq!(c.get(VmTypeId(0)).id, VmTypeId(0));
    }

    #[test]
    #[should_panic(expected = "at least one VM type")]
    fn empty_catalogue_rejected() {
        let _ = VmCatalog::new(vec![]);
    }

    #[test]
    fn single_catalogue() {
        let c = VmCatalog::single("only");
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
        assert_eq!(c.get(VmTypeId(0)).name, "only");
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(VmTypeId(2).to_string(), "V2");
    }

    #[test]
    fn slots_scale_with_compute_units() {
        let c = VmCatalog::ec2_table1();
        for t in c.types() {
            assert_eq!(t.map_slots, t.compute_units);
            assert_eq!(t.cpu_mb_per_s, 25 * t.compute_units);
        }
    }
}
