//! The request vector `R` (paper §II): instances requested per VM type.

use crate::VmTypeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A vector of VM counts per type — the paper's request vector `R`, and
/// also the availability vector `A` and per-node remaining vectors `L[i]`
/// (they share the same algebra).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Request {
    counts: Vec<u32>,
}

impl Request {
    /// A request for zero VMs of each of `m` types.
    pub fn zeros(m: usize) -> Self {
        Self { counts: vec![0; m] }
    }

    /// Build from explicit per-type counts.
    pub fn from_counts(counts: Vec<u32>) -> Self {
        Self { counts }
    }

    /// Build from `(type, count)` pairs over `m` types; unlisted types get 0.
    ///
    /// # Panics
    /// Panics if a type index is out of range.
    pub fn from_pairs(m: usize, pairs: &[(VmTypeId, u32)]) -> Self {
        let mut counts = vec![0; m];
        for &(t, c) in pairs {
            counts[t.index()] += c;
        }
        Self { counts }
    }

    /// Number of VM types (`m`).
    #[inline]
    pub fn num_types(&self) -> usize {
        self.counts.len()
    }

    /// The raw counts.
    #[inline]
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Count for one type.
    ///
    /// # Panics
    /// Panics if `t` is out of range.
    #[inline]
    pub fn get(&self, t: VmTypeId) -> u32 {
        self.counts[t.index()]
    }

    /// Set the count for one type.
    ///
    /// # Panics
    /// Panics if `t` is out of range.
    #[inline]
    pub fn set(&mut self, t: VmTypeId, count: u32) {
        self.counts[t.index()] = count;
    }

    /// Total VMs requested across all types.
    pub fn total_vms(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// Whether no VMs are requested.
    pub fn is_zero(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// The paper's `com(A, B)`: elementwise minimum. `com(L[i], R)` is "what
    /// node `N_i` can contribute towards request `R`".
    ///
    /// ```
    /// use vc_model::Request;
    /// let remaining = Request::from_counts(vec![3, 0, 2]);
    /// let wanted = Request::from_counts(vec![2, 1, 4]);
    /// assert_eq!(remaining.com(&wanted).counts(), &[2, 0, 2]);
    /// ```
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn com(&self, other: &Self) -> Self {
        assert_eq!(self.counts.len(), other.counts.len(), "type count mismatch");
        Self {
            counts: self
                .counts
                .iter()
                .zip(&other.counts)
                .map(|(&a, &b)| a.min(b))
                .collect(),
        }
    }

    /// Elementwise `self ≤ other` — e.g. `R ≤ A` is the admissibility
    /// condition of §II.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn le(&self, other: &Self) -> bool {
        assert_eq!(self.counts.len(), other.counts.len(), "type count mismatch");
        self.counts.iter().zip(&other.counts).all(|(a, b)| a <= b)
    }

    /// Elementwise checked addition.
    ///
    /// # Panics
    /// Panics if lengths differ or on overflow.
    pub fn checked_add_assign(&mut self, other: &Self) {
        assert_eq!(self.counts.len(), other.counts.len(), "type count mismatch");
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.checked_add(b).expect("request count overflow");
        }
    }

    /// Elementwise checked subtraction (`tempR ← tempR − com(L[i], tempR)`
    /// in Algorithm 1).
    ///
    /// # Panics
    /// Panics if lengths differ or any entry would underflow.
    pub fn checked_sub_assign(&mut self, other: &Self) {
        assert_eq!(self.counts.len(), other.counts.len(), "type count mismatch");
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.checked_sub(b).expect("request count underflow");
        }
    }

    /// Iterator over `(type, count)` pairs with non-zero count.
    pub fn nonzero(&self) -> impl Iterator<Item = (VmTypeId, u32)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (VmTypeId::from_index(i), c))
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R[")?;
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}·V{i}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_accumulates() {
        let r = Request::from_pairs(3, &[(VmTypeId(0), 2), (VmTypeId(2), 1), (VmTypeId(0), 1)]);
        assert_eq!(r.counts(), &[3, 0, 1]);
        assert_eq!(r.total_vms(), 4);
    }

    #[test]
    fn com_elementwise_min() {
        let a = Request::from_counts(vec![3, 1, 0]);
        let b = Request::from_counts(vec![2, 5, 4]);
        assert_eq!(a.com(&b).counts(), &[2, 1, 0]);
    }

    #[test]
    fn com_with_self_identity() {
        let a = Request::from_counts(vec![3, 1, 0]);
        assert_eq!(a.com(&a), a);
    }

    #[test]
    fn le_semantics() {
        let r = Request::from_counts(vec![1, 2]);
        let a = Request::from_counts(vec![1, 3]);
        assert!(r.le(&a));
        assert!(!a.le(&r));
    }

    #[test]
    fn com_equals_rhs_iff_lhs_covers() {
        // The paper's test `com(L[i], R) == R` means node i can host all of R.
        let l = Request::from_counts(vec![5, 5, 5]);
        let r = Request::from_counts(vec![2, 0, 3]);
        assert_eq!(l.com(&r), r);
        let l2 = Request::from_counts(vec![1, 0, 3]);
        assert_ne!(l2.com(&r), r);
    }

    #[test]
    fn add_sub_roundtrip() {
        let mut r = Request::zeros(2);
        let d = Request::from_counts(vec![4, 7]);
        r.checked_add_assign(&d);
        assert_eq!(r, d);
        r.checked_sub_assign(&d);
        assert!(r.is_zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let mut r = Request::zeros(1);
        r.checked_sub_assign(&Request::from_counts(vec![1]));
    }

    #[test]
    #[should_panic(expected = "type count mismatch")]
    fn length_mismatch_panics() {
        let a = Request::zeros(2);
        let b = Request::zeros(3);
        let _ = a.com(&b);
    }

    #[test]
    fn nonzero_iterator() {
        let r = Request::from_counts(vec![0, 2, 0, 1]);
        let v: Vec<_> = r.nonzero().collect();
        assert_eq!(v, vec![(VmTypeId(1), 2), (VmTypeId(3), 1)]);
    }

    #[test]
    fn display_format() {
        let r = Request::from_counts(vec![2, 4, 1]);
        assert_eq!(r.to_string(), "R[2·V0, 4·V1, 1·V2]");
    }

    #[test]
    fn get_set() {
        let mut r = Request::zeros(2);
        r.set(VmTypeId(1), 9);
        assert_eq!(r.get(VmTypeId(1)), 9);
    }
}
