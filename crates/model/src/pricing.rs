//! Instance pricing — the economics the paper's introduction frames
//! ("users … without exceeding a given budget", "cloud providers try to
//! maximize the use of resources and achieve more profits").
//!
//! Prices are integer micro-dollars per hour to keep revenue arithmetic
//! exact; the defaults are the 2012 on-demand US-East rates for the
//! Table-I instances.

use crate::{Request, VmCatalog, VmTypeId};
use serde::{Deserialize, Serialize};
use vc_des::SimTime;

/// Hourly price per VM type, in micro-dollars (10⁻⁶ $).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PriceList {
    per_hour_microdollars: Vec<u64>,
}

impl PriceList {
    /// Build from explicit per-type hourly prices (micro-dollars).
    pub fn new(per_hour_microdollars: Vec<u64>) -> Self {
        Self {
            per_hour_microdollars,
        }
    }

    /// 2012 Amazon EC2 on-demand rates for the Table-I types:
    /// small $0.08/h, medium $0.16/h, large $0.32/h.
    pub fn ec2_2012() -> Self {
        Self::new(vec![80_000, 160_000, 320_000])
    }

    /// Number of VM types priced.
    pub fn len(&self) -> usize {
        self.per_hour_microdollars.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.per_hour_microdollars.is_empty()
    }

    /// Hourly price of one instance of `ty`, micro-dollars.
    ///
    /// # Panics
    /// Panics if `ty` is out of range.
    pub fn hourly(&self, ty: VmTypeId) -> u64 {
        self.per_hour_microdollars[ty.index()]
    }

    /// Hourly price of a whole request, micro-dollars.
    ///
    /// # Panics
    /// Panics if the request has more types than the price list, or on
    /// overflow.
    pub fn request_hourly(&self, request: &Request) -> u64 {
        request
            .nonzero()
            .map(|(ty, count)| {
                self.hourly(ty)
                    .checked_mul(u64::from(count))
                    .expect("price overflow")
            })
            .try_fold(0u64, u64::checked_add)
            .expect("price overflow")
    }

    /// Cost of holding `request` for `duration`, micro-dollars, with
    /// sub-hour billing pro-rated (fractional hours, rounded to the
    /// nearest micro-dollar).
    pub fn cost(&self, request: &Request, duration: SimTime) -> u64 {
        let hourly = self.request_hourly(request) as f64;
        let hours = duration.as_secs_f64() / 3600.0;
        (hourly * hours).round() as u64
    }

    /// Check this price list covers a catalogue.
    pub fn covers(&self, catalog: &VmCatalog) -> bool {
        self.len() >= catalog.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ec2_rates() {
        let p = PriceList::ec2_2012();
        assert_eq!(p.hourly(VmTypeId(0)), 80_000);
        assert_eq!(p.hourly(VmTypeId(2)), 320_000);
        assert!(p.covers(&VmCatalog::ec2_table1()));
        assert!(!p.is_empty());
    }

    #[test]
    fn request_pricing_is_linear() {
        let p = PriceList::ec2_2012();
        // 2 small + 4 medium + 1 large = 0.16 + 0.64 + 0.32 = $1.12/h
        let r = Request::from_counts(vec![2, 4, 1]);
        assert_eq!(p.request_hourly(&r), 1_120_000);
    }

    #[test]
    fn cost_prorates_subhour() {
        let p = PriceList::ec2_2012();
        let r = Request::from_counts(vec![1, 0, 0]);
        // 30 minutes of a $0.08/h instance = $0.04.
        assert_eq!(p.cost(&r, SimTime::from_secs(1800)), 40_000);
        assert_eq!(p.cost(&r, SimTime::ZERO), 0);
    }

    #[test]
    fn zero_request_free() {
        let p = PriceList::ec2_2012();
        assert_eq!(p.request_hourly(&Request::zeros(3)), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_type_panics() {
        let p = PriceList::new(vec![1]);
        let _ = p.hourly(VmTypeId(3));
    }
}
