//! Property tests: request algebra and resource-accounting invariants.

use proptest::prelude::*;
use std::sync::Arc;
use vc_model::{Allocation, ClusterState, Request, ResourceMatrix, VmCatalog, VmTypeId};
use vc_topology::{generate, DistanceTiers, NodeId};

fn request(m: usize) -> impl Strategy<Value = Request> {
    proptest::collection::vec(0u32..8, m).prop_map(Request::from_counts)
}

proptest! {
    #[test]
    fn com_is_commutative_idempotent_monotone(a in request(4), b in request(4)) {
        prop_assert_eq!(a.com(&b), b.com(&a));
        prop_assert_eq!(a.com(&a), a.clone());
        let c = a.com(&b);
        prop_assert!(c.le(&a) && c.le(&b));
        // com is the greatest lower bound: anything below both is below com.
        prop_assert_eq!(c.com(&a), c.clone());
    }

    #[test]
    fn le_is_a_partial_order(a in request(3), b in request(3), c in request(3)) {
        prop_assert!(a.le(&a));
        if a.le(&b) && b.le(&a) {
            prop_assert_eq!(a.clone(), b.clone());
        }
        if a.le(&b) && b.le(&c) {
            prop_assert!(a.le(&c));
        }
    }

    #[test]
    fn add_sub_roundtrip(a in request(3), b in request(3)) {
        let mut x = a.clone();
        x.checked_add_assign(&b);
        prop_assert_eq!(x.total_vms(), a.total_vms() + b.total_vms());
        x.checked_sub_assign(&b);
        prop_assert_eq!(x, a);
    }

    #[test]
    fn matrix_column_sums_match_totals(rows in proptest::collection::vec(
        proptest::collection::vec(0u32..5, 3), 1..6)) {
        let m = ResourceMatrix::from_rows(&rows);
        let sums = m.column_sums();
        prop_assert_eq!(u64::from(sums.total_vms()), m.total());
        let node_total: u64 = (0..m.num_nodes())
            .map(|i| u64::from(m.node_total(NodeId::from_index(i))))
            .sum();
        prop_assert_eq!(node_total, m.total());
    }

    #[test]
    fn allocate_release_conserves_state(
        takes in proptest::collection::vec((0usize..6, 0usize..3, 1u32..3), 0..8)
    ) {
        let topo = Arc::new(generate::uniform(2, 3, DistanceTiers::default()));
        let cat = Arc::new(VmCatalog::ec2_table1());
        let mut s = ClusterState::uniform_capacity(topo, cat, 3);
        let initial_avail = s.availability();
        let mut matrix = ResourceMatrix::zeros(6, 3);
        for (node, ty, count) in takes {
            let (n, t) = (NodeId::from_index(node), VmTypeId::from_index(ty));
            if matrix.get(n, t) + count <= 3 {
                matrix.add(n, t, count);
            }
        }
        let alloc = Allocation::new(matrix.clone(), NodeId(0));
        s.allocate(&alloc).unwrap();
        prop_assert_eq!(s.used(), &matrix);
        let mut expected = initial_avail.clone();
        expected.checked_sub_assign(&matrix.column_sums());
        prop_assert_eq!(s.availability(), expected);
        s.release(&alloc).unwrap();
        prop_assert_eq!(s.availability(), initial_avail);
        prop_assert!(s.used().is_zero());
    }

    #[test]
    fn fail_node_never_underflows(
        node in 0usize..6,
        takes in proptest::collection::vec((0usize..6, 0usize..3), 0..6)
    ) {
        let topo = Arc::new(generate::uniform(2, 3, DistanceTiers::default()));
        let cat = Arc::new(VmCatalog::ec2_table1());
        let mut s = ClusterState::uniform_capacity(topo, cat, 2);
        let mut matrix = ResourceMatrix::zeros(6, 3);
        for (n, t) in takes {
            let (n, t) = (NodeId::from_index(n), VmTypeId::from_index(t));
            if matrix.get(n, t) < 2 {
                matrix.add(n, t, 1);
            }
        }
        s.allocate(&Allocation::new(matrix.clone(), NodeId(0))).unwrap();
        let failed = NodeId::from_index(node);
        let lost = s.fail_node(failed);
        prop_assert_eq!(lost.counts(), matrix.row(failed));
        prop_assert_eq!(s.remaining_at(failed).total_vms(), 0);
        // The rest of the cloud is untouched.
        for other in s.topology().node_ids().filter(|&n| n != failed) {
            prop_assert_eq!(s.used().row(other), matrix.row(other));
        }
    }

    #[test]
    fn allocation_placements_expand_counts(rows in proptest::collection::vec(
        proptest::collection::vec(0u32..4, 2), 1..5)) {
        let matrix = ResourceMatrix::from_rows(&rows);
        let total = matrix.total();
        let alloc = Allocation::new(matrix.clone(), NodeId(0));
        let placements = alloc.placements();
        prop_assert_eq!(placements.len() as u64, total);
        for (node, ty) in placements {
            prop_assert!(matrix.get(node, ty) > 0);
        }
    }
}
