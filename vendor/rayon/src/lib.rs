//! Vendored `rayon` shim.
//!
//! Supports the `par_iter().map().collect()` / `into_par_iter().map().collect()`
//! shapes used by `vc-cloudsim::batch`. Work is distributed over
//! `std::thread::scope` workers pulling from a shared queue; results are
//! written back by index so output order matches input order, exactly as
//! rayon's indexed collect guarantees.

use std::sync::Mutex;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Minimal parallel-iterator abstraction: materialize, then adapt.
pub trait ParallelIterator: Sized {
    type Item: Send;

    /// Evaluate the pipeline into an ordered `Vec`.
    fn into_vec(self) -> Vec<Self::Item>;

    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_ordered_vec(self.into_vec())
    }
}

pub trait FromParallelIterator<T> {
    fn from_ordered_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(items: Vec<T>) -> Self {
        items
    }
}

pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync,
{
    type Item = R;

    fn into_vec(self) -> Vec<R> {
        parallel_map(self.base.into_vec(), &self.f)
    }
}

fn parallel_map<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: &F) -> Vec<R> {
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);

    let queue = Mutex::new(items.into_iter().enumerate());
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = queue.lock().unwrap().next();
                let Some((idx, item)) = next else { break };
                let result = f(item);
                *slots[idx].lock().unwrap() = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("worker filled every slot")
        })
        .collect()
}

/// `vec.into_par_iter()` — consuming parallel iteration.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;
    fn into_vec(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;
    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

/// `slice.par_iter()` — borrowing parallel iteration.
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn par_iter(&'a self) -> Self::Iter;
}

pub struct SliceParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;
    fn into_vec(self) -> Vec<&'a T> {
        self.slice.iter().collect()
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;
    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;
    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ordered_ref_map() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn ordered_owned_map() {
        let input: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let out: Vec<usize> = input.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(out[0], 1);
        assert_eq!(out[99], 2);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let one: Vec<u32> = vec![7].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }
}
