//! Vendored `serde_json` shim: JSON text ↔ the shim [`Value`] tree.

pub use serde::{Error, Value};
pub use shim_macros::json;

use serde::{Deserialize, Serialize};

/// Convert any serialisable value into a [`Value`] tree (infallible in
/// the shim data model; used by the `json!` macro).
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

/// Serialise to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&v.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialise to pretty JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&v.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any deserialisable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                // Match serde_json: integral floats print with `.0`.
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{n:.1}"));
                } else {
                    out.push_str(&format!("{n}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::custom("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this workspace's
                            // data; map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::custom("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let v = json!({"a": 1, "b": [true, null, "x\"y"], "c": -2.5});
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_parses_back() {
        let v = json!({"outer": {"inner": [1, 2, 3]}});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn garbage_rejected() {
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("{\"a\":1} extra").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(from_str::<Value>("42").unwrap(), Value::I64(42));
        assert_eq!(from_str::<Value>("-7").unwrap(), Value::I64(-7));
        assert_eq!(from_str::<Value>("1.5").unwrap(), Value::F64(1.5));
        assert_eq!(
            from_str::<Value>("18446744073709551615").unwrap(),
            Value::U64(u64::MAX)
        );
    }

    #[test]
    fn index_and_eq() {
        let v = json!({"request": [1, 0, 0], "n": 4});
        assert_eq!(v["request"], json!([1, 0, 0]));
        assert_eq!(v["n"], json!(4));
        assert!(v["n"].is_u64());
        assert!(v["missing"].is_null());
    }
}
