//! Vendored `rand` shim.
//!
//! Implements the subset of the rand 0.8 API used by this workspace:
//! [`RngCore`] (object safe), a blanket [`Rng`] extension trait whose
//! methods work through `&mut dyn RngCore`, [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64),
//! [`seq::SliceRandom`], and uniform ranges via [`Rng::gen_range`].
//!
//! Deterministic given a seed, like the real crate, but the streams differ
//! from upstream rand — seeded tests reproduce within this workspace only.

use std::ops::{Range, RangeInclusive};

/// Core random source: only the raw-output methods, so the trait stays
/// object safe (`&mut dyn RngCore` is used by placement policies).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl RngCore for Box<dyn RngCore> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_inclusive: Self) -> Self;
    /// Sample from the half-open range `[lo, hi)`.
    fn sample_range_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_inclusive: Self) -> Self {
                let span = (hi_inclusive as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $wide as $t;
                }
                // Debiased via rejection sampling on the top of the range.
                let bound = span + 1;
                let zone = u64::MAX - (u64::MAX % bound);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return ((lo as $wide).wrapping_add((v % bound) as $wide)) as $t;
                    }
                }
            }

            fn sample_range_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                Self::sample_range(rng, lo, hi - 1)
            }
        }
    )*};
}

sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_inclusive: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi_inclusive - lo)
    }

    fn sample_range_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        // Resample the (measure-zero) upper endpoint away.
        loop {
            let v = Self::sample_range(rng, lo, hi);
            if v < hi {
                return v;
            }
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_inclusive: Self) -> Self {
        f64::sample_range(rng, lo as f64, hi_inclusive as f64) as f32
    }

    fn sample_range_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_range_exclusive(rng, lo as f64, hi as f64) as f32
    }
}

/// Range argument for [`Rng::gen_range`]: `lo..hi` or `lo..=hi`.
/// Implemented generically (like upstream rand) so integer-literal
/// ranges adopt the type demanded by the call site.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(rng, lo, hi)
    }
}

/// Values producible by [`Rng::gen`].
pub trait Standard {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u32 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Extension methods; no `Self: Sized` bounds so they are callable through
/// `&mut dyn RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::gen_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::gen_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction; only `seed_from_u64` is used by this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator seeded through SplitMix64 — small, fast, and
    /// good enough statistical quality for simulation workloads.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(8);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next_u64().to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let bytes = self.next_u64().to_le_bytes();
                rem.copy_from_slice(&bytes[..rem.len()]);
            }
        }
    }

    /// Alias: the shim StdRng is already small.
    pub type SmallRng = StdRng;
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers: Fisher–Yates shuffle and uniform choice.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod distributions {
    use super::{RngCore, SampleUniform};

    /// A value distribution samplable with an RNG.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over a closed range.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<T> {
        lo: T,
        hi_inclusive: T,
    }

    impl<T: SampleUniform + Copy + PartialOrd> Uniform<T> {
        pub fn new(lo: T, hi_exclusive: T) -> Self
        where
            T: Bounded,
        {
            assert!(lo < hi_exclusive, "Uniform::new requires lo < hi");
            Uniform {
                lo,
                hi_inclusive: hi_exclusive.step_down(),
            }
        }

        pub fn new_inclusive(lo: T, hi_inclusive: T) -> Self {
            assert!(
                lo <= hi_inclusive,
                "Uniform::new_inclusive requires lo <= hi"
            );
            Uniform { lo, hi_inclusive }
        }
    }

    impl<T: SampleUniform + Copy> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_range(rng, self.lo, self.hi_inclusive)
        }
    }

    /// Helper so `Uniform::new`'s exclusive upper bound can be mapped onto
    /// the inclusive sampler.
    pub trait Bounded {
        fn step_down(self) -> Self;
    }

    macro_rules! bounded_int {
        ($($t:ty),* $(,)?) => {$(
            impl Bounded for $t {
                fn step_down(self) -> Self { self - 1 }
            }
        )*};
    }
    bounded_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Bounded for f64 {
        fn step_down(self) -> Self {
            // Treat the half-open float range as closed; the endpoint has
            // measure zero for simulation purposes.
            self
        }
    }
}

/// Non-deterministic entropy source, seeded from the system clock address
/// space layout. Only used where the real crate's `thread_rng` appears.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5eed);
    SeedableRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10u32);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(0..=5usize);
            assert!(w <= 5);
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!(f >= f64::EPSILON && f < 1.0);
        }
    }

    #[test]
    fn works_through_dyn() {
        let mut rng = StdRng::seed_from_u64(1);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0..100u64);
        assert!(v < 100);
        let f: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
