//! Vendored `serde` shim.
//!
//! The real serde's serializer-driven data model is replaced by a direct
//! conversion to/from a JSON-like [`Value`] tree — exactly what this
//! workspace needs (all serialisation here ends up as JSON).

pub use shim_macros::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A JSON-like value tree: the shim's entire data model.
#[derive(Debug, Clone)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when a value does not fit `i64`).
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// Numbers compare by mathematical value across `I64`/`U64`/`F64`.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Array(a), Array(b)) => a == b,
            (Object(a), Object(b)) => a == b,
            (a, b) => match (a.as_f64_lossless(), b.as_f64_lossless()) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
        }
    }
}

static NULL: Value = Value::Null;

impl Value {
    fn as_f64_lossless(&self) -> Option<f64> {
        match *self {
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// `true` for `I64 >= 0`, `U64`, and integral non-negative `F64`.
    pub fn is_u64(&self) -> bool {
        match *self {
            Value::U64(_) => true,
            Value::I64(v) => v >= 0,
            _ => false,
        }
    }

    /// `true` for any numeric variant.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::I64(_) | Value::U64(_) | Value::F64(_))
    }

    /// `true` for `Str`.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::Str(_))
    }

    /// `true` for `Array`.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// `true` for `Object`.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// `true` for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Unsigned integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// Signed integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// Floating-point view (any number).
    pub fn as_f64(&self) -> Option<f64> {
        self.as_f64_lossless()
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object field lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

/// Compact JSON rendering, matching `serde_json::Value::to_string()`.
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(true) => f.write_str("true"),
            Value::Bool(false) => f.write_str("false"),
            Value::I64(n) => write!(f, "{n}"),
            Value::U64(n) => write!(f, "{n}"),
            Value::F64(n) => {
                if !n.is_finite() {
                    f.write_str("null")
                } else if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{n:.1}")
                } else {
                    write!(f, "{n}")
                }
            }
            Value::Str(s) => write_json_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Deserialisation / format error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Wrap a message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Serialise into the shim [`Value`] data model.
pub trait Serialize {
    /// Convert `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Deserialise from the shim [`Value`] data model.
pub trait Deserialize: Sized {
    /// Build `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Helpers used by the derive macros.
pub mod value {
    use super::{Error, Value};

    /// The object entries of `v`, or an error.
    pub fn as_object(v: &Value) -> Result<&Vec<(String, Value)>, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {v:?}")))
    }

    /// Fetch a required object field.
    pub fn field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, Error> {
        v.get(name)
            .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
    }

    /// Fetch a required array element.
    pub fn element(v: &Value, i: usize) -> Result<&Value, Error> {
        v.as_array()
            .and_then(|a| a.get(i))
            .ok_or_else(|| Error::custom(format!("missing tuple element {i}")))
    }

    /// The single `(key, value)` entry of a one-entry object (externally
    /// tagged enum representation).
    pub fn single_entry(v: &Value) -> Option<(&str, &Value)> {
        match v.as_object() {
            Some(o) if o.len() == 1 => Some((o[0].0.as_str(), &o[0].1)),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(v) => Value::I64(v),
            Err(_) => Value::U64(*self),
        }
    }
}

impl Serialize for usize {
    fn to_value(&self) -> Value {
        (*self as u64).to_value()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! serialize_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}

serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!("expected integer, got {v:?}")))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::U64(x) => Ok(x),
            Value::I64(x) if x >= 0 => Ok(x as u64),
            _ => Err(Error::custom(format!("expected u64, got {v:?}"))),
        }
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        u64::from_value(v).map(|x| x as usize)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {v:?}")))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom(format!("expected bool, got {v:?}"))),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {v:?}")))
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok((
            A::from_value(value::element(v, 0)?)?,
            B::from_value(value::element(v, 1)?)?,
        ))
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        value::as_object(v)?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}
