//! Vendored `criterion` shim.
//!
//! Provides the API shape the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros — with
//! a simple wall-clock measurement loop instead of criterion's statistical
//! machinery. Reports mean/min/max per-iteration time on stdout.
//!
//! When cargo runs bench targets under `cargo test` it passes `--test`;
//! in that mode each benchmark executes exactly once as a smoke test.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state, configured from the command line.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" => {}
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            test_mode: self.test_mode,
            filter: self.filter.clone(),
            _marker: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(name.to_string(), f);
        self
    }
}

/// A named group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
    filter: Option<String>,
    // Tie the group's lifetime to the Criterion borrow like the real API.
    #[allow(dead_code)]
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.0, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.0, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn full_name(&self, bench: &str) -> String {
        if self.name.is_empty() {
            bench.to_string()
        } else {
            format!("{}/{}", self.name, bench)
        }
    }

    fn run(&self, bench: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full = self.full_name(bench);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        if self.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("test {full} ... ok");
            return;
        }

        // Calibrate: grow the iteration count until one batch takes >= ~5ms.
        let mut iters: u64 = 1;
        let per_iter = loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 24 {
                break b.elapsed.as_secs_f64() / iters as f64;
            }
            iters *= 4;
        };

        // Split the measurement budget across the requested samples.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-12)) as u64).clamp(1, 1 << 24);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        let deadline = Instant::now() + self.measurement_time * 2;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
            if Instant::now() > deadline {
                break;
            }
        }

        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{full:<50} time: [{} {} {}]  ({} samples x {} iters)",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max),
            samples.len(),
            iters_per_sample,
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark identifier: `name/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
