//! Proc macros for the vendored serde shims: `#[derive(Serialize)]`,
//! `#[derive(Deserialize)]`, and a function-like `json!`.
//!
//! Written against the raw `proc_macro` API (no `syn`/`quote`), parsing
//! only the shapes this workspace actually uses:
//!
//! * structs with named fields,
//! * tuple structs (any arity; one-field tuples serialise transparently,
//!   matching `#[serde(transparent)]` and serde's newtype behaviour),
//! * enums with unit, tuple, and struct variants (externally tagged).

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// shared parsing
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum Shape {
    /// `struct S { a: T, b: U }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct S(T, U);` — arity recorded.
    TupleStruct { name: String, arity: usize },
    /// `struct S;`
    UnitStruct { name: String },
    /// `enum E { ... }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

/// Split a token stream into a vector we can index into.
fn toks(input: TokenStream) -> Vec<TokenTree> {
    input.into_iter().collect()
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

/// Skip one attribute (`#[...]`) starting at `i`; returns the index after it.
fn skip_attr(ts: &[TokenTree], mut i: usize) -> usize {
    debug_assert!(is_punct(&ts[i], '#'));
    i += 1;
    if matches!(&ts[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket) {
        i += 1;
    }
    i
}

/// Does the item carry `#[serde(transparent)]`?
fn has_transparent(ts: &[TokenTree]) -> bool {
    let mut i = 0;
    while i < ts.len() {
        if is_punct(&ts[i], '#') {
            if let TokenTree::Group(g) = &ts[i + 1] {
                let inner = toks(g.stream());
                if !inner.is_empty() && is_ident(&inner[0], "serde") {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        if args.stream().to_string().contains("transparent") {
                            return true;
                        }
                    }
                }
            }
            i = skip_attr(ts, i);
        } else {
            break;
        }
    }
    false
}

/// Skip leading attributes and visibility, returning the index of the
/// `struct`/`enum` keyword.
fn skip_to_keyword(ts: &[TokenTree]) -> usize {
    let mut i = 0;
    loop {
        if is_punct(&ts[i], '#') {
            i = skip_attr(ts, i);
        } else if is_ident(&ts[i], "pub") {
            i += 1;
            // `pub(crate)` etc.
            if matches!(&ts[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis) {
                i += 1;
            }
        } else {
            return i;
        }
    }
}

/// Parse comma-separated named fields out of a brace group's stream,
/// returning field names. Tracks `<`/`>` depth so generic arguments with
/// commas (e.g. `BTreeMap<K, V>`) do not split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let ts = toks(stream);
    let mut fields = Vec::new();
    let mut i = 0;
    while i < ts.len() {
        // field attributes
        while i < ts.len() && is_punct(&ts[i], '#') {
            i = skip_attr(&ts, i);
        }
        if i >= ts.len() {
            break;
        }
        if is_ident(&ts[i], "pub") {
            i += 1;
            if matches!(&ts[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis) {
                i += 1;
            }
        }
        let TokenTree::Ident(name) = &ts[i] else {
            panic!("expected field name, got {:?}", ts[i]);
        };
        fields.push(name.to_string());
        i += 1;
        assert!(is_punct(&ts[i], ':'), "expected `:` after field name");
        i += 1;
        // skip the type up to a top-level comma
        let mut angle: i32 = 0;
        while i < ts.len() {
            match &ts[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Count comma-separated entries (tuple-struct/tuple-variant fields) in a
/// parenthesis group's stream.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let ts = toks(stream);
    if ts.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle: i32 = 0;
    let mut i = 0;
    // Strip per-field attributes and visibility from the count: commas only.
    while i < ts.len() {
        match &ts[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                // trailing comma?
                if i + 1 < ts.len() {
                    count += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let ts = toks(stream);
    let mut variants = Vec::new();
    let mut i = 0;
    while i < ts.len() {
        while i < ts.len() && is_punct(&ts[i], '#') {
            i = skip_attr(&ts, i);
        }
        if i >= ts.len() {
            break;
        }
        let TokenTree::Ident(name) = &ts[i] else {
            panic!("expected variant name, got {:?}", ts[i]);
        };
        let name = name.to_string();
        i += 1;
        let kind = match ts.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        if i < ts.len() && is_punct(&ts[i], ',') {
            i += 1;
        }
    }
    variants
}

fn parse_shape(input: TokenStream) -> (Shape, bool) {
    let ts = toks(input);
    let transparent = has_transparent(&ts);
    let mut i = skip_to_keyword(&ts);
    let kw = match &ts[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected struct/enum, got {other:?}"),
    };
    i += 1;
    let TokenTree::Ident(name) = &ts[i] else {
        panic!("expected type name");
    };
    let name = name.to_string();
    i += 1;
    // Generics are not supported; skip a `<...>` if present so the error
    // surfaces as a compile error in generated code rather than a panic.
    if i < ts.len() && is_punct(&ts[i], '<') {
        let mut depth = 0i32;
        while i < ts.len() {
            if is_punct(&ts[i], '<') {
                depth += 1;
            } else if is_punct(&ts[i], '>') {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    let shape = if kw == "struct" {
        match ts.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            _ => Shape::UnitStruct { name },
        }
    } else if kw == "enum" {
        match ts.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("expected enum body, got {other:?}"),
        }
    } else {
        panic!("derive target must be a struct or enum, got `{kw}`");
    };
    (shape, transparent)
}

// ---------------------------------------------------------------------------
// derive(Serialize)
// ---------------------------------------------------------------------------

/// Derive the shim `serde::Serialize` (conversion to `serde::Value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (shape, transparent) = parse_shape(input);
    let body = match &shape {
        Shape::NamedStruct { fields, .. } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("serde::Value::Object(vec![{}])", pairs.join(", "))
        }
        Shape::TupleStruct { arity: 1, .. } => {
            // newtype / transparent: serialise as the inner value
            "serde::Serialize::to_value(&self.0)".to_string()
        }
        Shape::TupleStruct { arity, .. } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct { .. } => "serde::Value::Null".to_string(),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => serde::Value::Object(vec![(\"{vn}\".to_string(), serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => serde::Value::Object(vec![(\"{vn}\".to_string(), serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => serde::Value::Object(vec![(\"{vn}\".to_string(), serde::Value::Object(vec![{}]))]),",
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    let _ = transparent; // one-field tuples already serialise transparently
    let name = shape_name(&shape);
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

fn shape_name(shape: &Shape) -> &str {
    match shape {
        Shape::NamedStruct { name, .. }
        | Shape::TupleStruct { name, .. }
        | Shape::UnitStruct { name }
        | Shape::Enum { name, .. } => name,
    }
}

// ---------------------------------------------------------------------------
// derive(Deserialize)
// ---------------------------------------------------------------------------

/// Derive the shim `serde::Deserialize` (conversion from `serde::Value`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (shape, _transparent) = parse_shape(input);
    let name = shape_name(&shape).to_string();
    let body = match &shape {
        Shape::NamedStruct { fields, .. } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::from_value(serde::value::field(__v, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "let _ = serde::value::as_object(__v)?; Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct { arity: 1, .. } => {
            format!("Ok({name}(serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct { arity, .. } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| {
                    format!("serde::Deserialize::from_value(serde::value::element(__v, {i})?)?")
                })
                .collect();
            format!("Ok({name}({}))", inits.join(", "))
        }
        Shape::UnitStruct { .. } => format!("Ok({name})"),
        Shape::Enum { variants, .. } => {
            let mut unit_arms = Vec::new();
            let mut tagged_arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push(format!("\"{vn}\" => return Ok({name}::{vn}),"));
                    }
                    VariantKind::Tuple(1) => {
                        tagged_arms.push(format!(
                            "\"{vn}\" => return Ok({name}::{vn}(serde::Deserialize::from_value(__inner)?)),"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!(
                                "serde::Deserialize::from_value(serde::value::element(__inner, {i})?)?"
                            ))
                            .collect();
                        tagged_arms.push(format!(
                            "\"{vn}\" => return Ok({name}::{vn}({})),",
                            inits.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!(
                                "{f}: serde::Deserialize::from_value(serde::value::field(__inner, \"{f}\")?)?"
                            ))
                            .collect();
                        tagged_arms.push(format!(
                            "\"{vn}\" => return Ok({name}::{vn} {{ {} }}),",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "if let serde::Value::Str(__s) = __v {{\n\
                     match __s.as_str() {{ {unit} _ => {{}} }}\n\
                 }}\n\
                 if let Some((__tag, __inner)) = serde::value::single_entry(__v) {{\n\
                     match __tag {{ {tagged} _ => {{}} }}\n\
                 }}\n\
                 Err(serde::Error::custom(format!(\"unknown {name} variant: {{__v:?}}\")))",
                unit = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// json!
// ---------------------------------------------------------------------------

/// `json!` literal macro producing a `serde_json::Value`.
///
/// Objects/arrays/`null` are handled structurally; any other value
/// position is treated as a Rust expression serialised via the shim
/// `Serialize` trait.
#[proc_macro]
pub fn json(input: TokenStream) -> TokenStream {
    let expr = json_value(&toks(input));
    expr.parse().expect("generated json! expression parses")
}

/// Translate the tokens of one JSON value position into a Rust expression
/// string.
fn json_value(ts: &[TokenTree]) -> String {
    if ts.len() == 1 {
        match &ts[0] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                return json_object(&toks(g.stream()));
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket => {
                return json_array(&toks(g.stream()));
            }
            TokenTree::Ident(id) if id.to_string() == "null" => {
                return "::serde_json::Value::Null".to_string();
            }
            _ => {}
        }
    }
    // Arbitrary Rust expression.
    let src = render_tokens(ts);
    format!("::serde_json::to_value(&({src}))")
}

/// Re-render tokens as source text, keeping joint puncts (`::`, `..`,
/// `->`) glued together so the result re-parses as the original code.
fn render_tokens(ts: &[TokenTree]) -> String {
    let mut out = String::new();
    for t in ts {
        match t {
            TokenTree::Punct(p) => {
                out.push(p.as_char());
                if p.spacing() == Spacing::Alone {
                    out.push(' ');
                }
            }
            TokenTree::Group(g) => {
                let (open, close) = match g.delimiter() {
                    Delimiter::Parenthesis => ("(", ")"),
                    Delimiter::Brace => ("{", "}"),
                    Delimiter::Bracket => ("[", "]"),
                    Delimiter::None => ("", ""),
                };
                out.push_str(open);
                out.push_str(&render_tokens(&toks(g.stream())));
                out.push_str(close);
                out.push(' ');
            }
            other => {
                out.push_str(&other.to_string());
                out.push(' ');
            }
        }
    }
    out
}

/// Split tokens on top-level commas.
fn split_commas(ts: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    for t in ts {
        if is_punct(t, ',') {
            out.push(std::mem::take(&mut cur));
        } else {
            cur.push(t.clone());
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn json_array(ts: &[TokenTree]) -> String {
    let items: Vec<String> = split_commas(ts)
        .iter()
        .filter(|part| !part.is_empty())
        .map(|part| json_value(part))
        .collect();
    format!("::serde_json::Value::Array(vec![{}])", items.join(", "))
}

fn json_object(ts: &[TokenTree]) -> String {
    let mut pairs = Vec::new();
    for part in split_commas(ts) {
        if part.is_empty() {
            continue;
        }
        // key : value — key is a string literal (or ident) before the first ':'
        let colon = part
            .iter()
            .position(|t| is_punct(t, ':'))
            .expect("json! object entry needs `key: value`");
        let key_toks = &part[..colon];
        let val_toks = &part[colon + 1..];
        let key = match key_toks {
            [TokenTree::Literal(l)] => l.to_string(),
            [TokenTree::Ident(i)] => format!("\"{i}\""),
            other => panic!("unsupported json! key: {other:?}"),
        };
        let val = json_value(val_toks);
        pairs.push(format!("({key}.to_string(), {val})"));
    }
    format!("::serde_json::Value::Object(vec![{}])", pairs.join(", "))
}
