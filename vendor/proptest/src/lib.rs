//! Vendored `proptest` shim.
//!
//! Random-sampling property testing with the `proptest!` macro surface this
//! workspace uses: strategies built from ranges, tuples,
//! [`collection::vec`], `any::<T>()`, `Just`, `prop_map`/`prop_flat_map`,
//! and the `prop_assert*`/`prop_assume` macros. Unlike upstream proptest
//! there is no shrinking and no persistence of failing cases
//! (`.proptest-regressions` files are ignored); failures report the
//! sampled inputs via `Debug` and the case seed.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod prelude {
    pub use crate::{any, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// RNG handed to strategies while sampling a case.
pub type TestRng = StdRng;

/// Harness configuration; only `cases` is honoured by the shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Outcome of a single property-test case body.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: discard this case and sample another.
    Reject,
    /// `prop_assert*!` failed: the property does not hold.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    type Value: Debug;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            f,
            whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, O, F> Strategy for Map<B, F>
where
    B: Strategy,
    O: Debug,
    F: Fn(B::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

pub struct FlatMap<B, F> {
    base: B,
    f: F,
}

impl<B, S, F> Strategy for FlatMap<B, F>
where
    B: Strategy,
    S: Strategy,
    F: Fn(B::Value) -> S,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

pub struct Filter<B, F> {
    base: B,
    f: F,
    whence: &'static str,
}

impl<B, F> Strategy for Filter<B, F>
where
    B: Strategy,
    F: Fn(&B::Value) -> bool,
{
    type Value = B::Value;
    fn sample(&self, rng: &mut TestRng) -> B::Value {
        for _ in 0..1000 {
            let v = self.base.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.whence
        )
    }
}

/// Strategy yielding a constant.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// --- ranges as strategies ---------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

// --- tuples of strategies ---------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// --- any::<T>() -------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Unit interval: well-behaved for simulation parameters, unlike
        // upstream's full-domain floats (NaN/inf are out of scope here).
        rng.gen()
    }
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// --- collections ------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive element-count bounds for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (min, max) = r.into_inner();
            assert!(min <= max, "empty size range");
            SizeRange { min, max }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

// --- runner -----------------------------------------------------------------

/// Drive one property: sample `config.cases` accepted cases (skipping
/// `prop_assume!` rejections) and panic with the inputs on the first failure.
pub fn run_cases<S, F>(config: &ProptestConfig, strategy: &S, mut body: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let max_attempts = u64::from(config.cases) * 20 + 100;
    while accepted < config.cases && attempts < max_attempts {
        let seed = 0x9e37_79b9_7f4a_7c15u64 ^ attempts;
        attempts += 1;
        let mut rng = TestRng::seed_from_u64(seed);
        let value = strategy.sample(&mut rng);
        let desc = format!("{value:?}");
        match body(value) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest case failed (seed {seed:#x}, case {accepted}): {msg}\n\
                     inputs: {desc}"
                );
            }
        }
    }
    assert!(
        accepted > 0,
        "prop_assume! rejected every sampled case ({attempts} attempts)"
    );
}

// --- macros -----------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let __strategy = ($($strat,)+);
            $crate::run_cases(&__config, &__strategy, |__values| {
                let ($($arg,)+) = __values;
                $body
                Ok(())
            });
        }
        $crate::__proptest_fns!(($config) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}: {:?} != {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in 0i64..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0..=5).contains(&y));
        }

        #[test]
        fn tuples_and_vecs((a, b) in (0usize..4, 1u32..9), v in crate::collection::vec(0u8..255, 0..16)) {
            prop_assert!(a < 4);
            prop_assert!((1..9).contains(&b));
            prop_assert!(v.len() < 16);
        }

        #[test]
        fn maps_and_assume(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn flat_map_composes() {
        use crate::{run_cases, ProptestConfig, Strategy};
        let strat = ((1usize..5).prop_flat_map(|n| crate::collection::vec(0u32..10, n..=n)),);
        run_cases(&ProptestConfig::with_cases(16), &strat, |(v,)| {
            assert!(!v.is_empty() && v.len() < 5);
            Ok(())
        });
    }
}
