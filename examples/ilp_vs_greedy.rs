//! Solve the paper's Shortest-Distance problem three ways — the §III-B
//! integer program (via the from-scratch `vc-ilp` simplex + branch &
//! bound), the exact fixed-centre decomposition, and Algorithm 1 — and
//! compare answers and wall-clock cost.
//!
//! ```sh
//! cargo run --release --example ilp_vs_greedy
//! ```

use affinity_vc::model::workload::RequestProfile;
use affinity_vc::placement::distance::distance_with_center;
use affinity_vc::placement::{exact, ilp, online};
use affinity_vc::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let topo = Arc::new(affinity_vc::topology::generate::paper_simulation());
    let catalog = Arc::new(VmCatalog::ec2_table1());
    let mut rng = StdRng::seed_from_u64(99);
    let capacity = affinity_vc::model::workload::random_capacity(&topo, &catalog, 3, &mut rng);
    let cloud = ClusterState::new(topo, catalog, capacity);

    println!(
        "{:>3} {:24} {:>8} {:>8} {:>8}   agreement",
        "#", "request", "greedy", "exact", "ILP"
    );
    let (mut t_greedy, mut t_exact, mut t_ilp) = (0.0f64, 0.0f64, 0.0f64);
    for i in 0..8 {
        let request = RequestProfile::standard().sample(3, &mut rng);
        if !cloud.can_satisfy(&request) {
            continue;
        }
        let topo = cloud.topology();

        let t = Instant::now();
        let g = online::place(&request, &cloud).unwrap();
        t_greedy += t.elapsed().as_secs_f64();
        let t = Instant::now();
        let e = exact::solve(&request, &cloud).unwrap();
        t_exact += t.elapsed().as_secs_f64();
        let t = Instant::now();
        let l = ilp::solve(&request, &cloud).unwrap();
        t_ilp += t.elapsed().as_secs_f64();

        let dg = distance_with_center(g.matrix(), topo, g.center());
        let de = distance_with_center(e.matrix(), topo, e.center());
        let dl = distance_with_center(l.matrix(), topo, l.center());
        assert_eq!(de, dl, "ILP must agree with the exact solver");
        let tag = if dg == de {
            "greedy optimal"
        } else {
            "greedy suboptimal"
        };
        println!(
            "{i:>3} {:24} {dg:>8} {de:>8} {dl:>8}   {tag}",
            request.to_string()
        );
    }
    println!(
        "\ntotal solve time: greedy {:.1}ms, exact {:.1}ms, ILP {:.0}ms",
        t_greedy * 1e3,
        t_exact * 1e3,
        t_ilp * 1e3
    );
    println!("The O(n²m) heuristic is near-optimal at a fraction of the ILP's cost.");
}
