//! Node failure and affinity-aware repair: the paper's §VII future work
//! made concrete. A provisioned cluster loses a node; the provider
//! repairs the allocation on surviving capacity, then rebalances when a
//! neighbour frees up.
//!
//! ```sh
//! cargo run --example failure_migration
//! ```

use affinity_vc::placement::distance::distance_with_center;
use affinity_vc::placement::{migration, online};
use affinity_vc::prelude::*;
use std::sync::Arc;

fn main() {
    let topo = Arc::new(affinity_vc::topology::generate::paper_simulation());
    let catalog = Arc::new(VmCatalog::ec2_table1());
    let mut cloud = ClusterState::uniform_capacity(topo, catalog, 1);

    // A neighbour tenant occupies part of rack 0.
    let neighbour = online::place(&Request::from_counts(vec![4, 4, 0]), &cloud).unwrap();
    cloud.allocate(&neighbour).unwrap();

    // Our tenant: 6 small + 2 medium VMs.
    let request = Request::from_counts(vec![6, 2, 0]);
    let mut cluster = online::place(&request, &cloud).unwrap();
    cloud.allocate(&cluster).unwrap();
    let d0 = distance_with_center(cluster.matrix(), cloud.topology(), cluster.center());
    println!(
        "provisioned: distance {d0}, centre {}, nodes {:?}",
        cluster.center(),
        cluster.matrix().occupied_nodes()
    );

    // A node hosting our VMs fails.
    let failed = cluster.matrix().occupied_nodes()[0];
    let lost = cloud.fail_node(failed);
    println!("\nnode {failed} failed, losing {lost}");

    let report =
        migration::repair(&mut cluster, failed, &mut cloud).expect("surviving capacity suffices");
    println!(
        "repair: {} move(s), distance {} -> {}, new centre {}",
        report.moves.len(),
        report.distance_before,
        report.distance_after,
        report.center
    );
    for m in &report.moves {
        println!("  move {}×{} {} -> {}", m.count, m.vm_type, m.from, m.to);
    }
    assert!(cluster.satisfies(&request));

    // The neighbour departs; rebalance pulls our stragglers closer.
    cloud.release(&neighbour).unwrap();
    let report = migration::rebalance(&mut cluster, &mut cloud, 8);
    println!(
        "\nneighbour left; rebalance: {} move(s), distance {} -> {}",
        report.moves.len(),
        report.distance_before,
        report.distance_after
    );
    assert!(cluster.satisfies(&request));
    println!("final nodes: {:?}", cluster.matrix().occupied_nodes());
}
