//! Simulate an IaaS cloud serving a stream of virtual-cluster requests,
//! comparing Algorithm 1 (per-request) with Algorithm 2 (batched global
//! sub-optimisation) and a spread baseline — the paper's §V-A scenario as
//! a full queueing simulation.
//!
//! ```sh
//! cargo run --example provisioning_queue
//! ```

use affinity_vc::cloudsim::sim::{run, PolicyMode, SimConfig};
use affinity_vc::cloudsim::ArrivalProcess;
use affinity_vc::placement::baselines::Spread;
use affinity_vc::placement::global::Admission;
use affinity_vc::placement::online::{OnlineHeuristic, ScanConfig};
use affinity_vc::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let topo = Arc::new(affinity_vc::topology::generate::paper_simulation());
    let catalog = Arc::new(VmCatalog::ec2_table1());
    let cloud = ClusterState::uniform_capacity(topo, catalog, 2);

    let trace = ArrivalProcess::paper_standard().generate(20, 3, &mut StdRng::seed_from_u64(7));
    println!(
        "20 requests, Poisson arrivals over {:.0}s, random 10-60s holds\n",
        trace.last().unwrap().arrival.as_secs_f64()
    );

    let modes: Vec<(&str, PolicyMode)> = vec![
        (
            "Algorithm 1 (online)",
            PolicyMode::Individual(Box::new(OnlineHeuristic)),
        ),
        (
            "Algorithm 2 (global batch)",
            PolicyMode::GlobalBatch(Admission::FifoBlocking, ScanConfig::default()),
        ),
        ("spread baseline", PolicyMode::Individual(Box::new(Spread))),
    ];

    println!(
        "{:28} {:>7} {:>9} {:>11} {:>11}",
        "policy", "served", "Σdistance", "mean wait", "max wait"
    );
    for (name, mode) in modes {
        let result = run(&cloud, SimConfig::new(trace.clone(), mode, 7));
        let max_wait = result
            .outcomes
            .iter()
            .filter_map(|o| o.wait())
            .max()
            .unwrap_or(SimTime::ZERO);
        println!(
            "{:28} {:>7} {:>9} {:>10.1}s {:>10.1}s",
            name,
            result.served,
            result.total_distance,
            result.mean_wait.as_secs_f64(),
            max_wait.as_secs_f64(),
        );
    }
    println!("\nAffinity-aware policies deliver compact clusters at no throughput cost.");
}
