//! Close the "distance = latency" loop (the paper's own definition, left
//! static in §II): probe the network, derive the distance matrix, build a
//! topology from it, and place a request — then watch a degraded
//! aggregation layer change the placement calculus.
//!
//! ```sh
//! cargo run --example measured_distance
//! ```

use affinity_vc::netsim::measure::derive_distance_matrix;
use affinity_vc::placement::{exact, online};
use affinity_vc::prelude::*;
use std::sync::Arc;

fn topology_from_measurement(params: &NetworkParams) -> Topology {
    // Physical layout: 2 racks × 4 nodes.
    let physical =
        affinity_vc::topology::generate::uniform(2, 4, DistanceTiers::paper_experiment());
    let matrix = derive_distance_matrix(&physical, params, SimTime::from_micros(100));

    // Rebuild a topology carrying the *measured* distances.
    let mut b = TopologyBuilder::new(DistanceTiers::new(1, 3, 100).unwrap());
    let cloud = b.add_cloud("measured");
    for r in 0..2 {
        let rack = b.add_named_rack(cloud, format!("rack{r}"));
        for _ in 0..4 {
            b.add_node(rack);
        }
    }
    b.with_distance_matrix(matrix);
    b.build()
}

fn main() {
    let request = Request::from_counts(vec![6, 0, 0]);
    let catalog = Arc::new(VmCatalog::ec2_table1());

    for (label, params) in [
        ("healthy network", NetworkParams::default()),
        (
            "degraded aggregation (cross-rack latency 5x)",
            NetworkParams {
                cross_rack_latency_us: 1_500,
                ..NetworkParams::default()
            },
        ),
    ] {
        let topo = Arc::new(topology_from_measurement(&params));
        println!(
            "{label}: measured cross-rack distance = {}",
            topo.distance(NodeId(0), NodeId(4))
        );
        let cloud = ClusterState::uniform_capacity(Arc::clone(&topo), Arc::clone(&catalog), 1);
        let alloc = online::place(&request, &cloud).expect("fits");
        let optimal = exact::solve(&request, &cloud).expect("fits");
        let d = affinity_vc::placement::distance::distance_with_center(
            alloc.matrix(),
            &topo,
            alloc.center(),
        );
        let d_opt = affinity_vc::placement::distance::distance_with_center(
            optimal.matrix(),
            &topo,
            optimal.center(),
        );
        println!(
            "  placed 6 VMs: distance {d} (optimal {d_opt}), racks used: {}\n",
            alloc.rack_span(&topo)
        );
    }
    println!("Re-probing after degradation raises cross-rack cost; placements stay compact.");
}
