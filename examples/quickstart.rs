//! Quickstart: provision an affinity-aware virtual cluster and compare it
//! against a locality-oblivious baseline.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use affinity_vc::placement::baselines::Spread;
use affinity_vc::placement::distance::distance_with_center;
use affinity_vc::placement::{exact, online, PlacementPolicy};
use affinity_vc::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    // 1. Describe the cloud: 3 racks × 10 nodes (the paper's simulation
    //    setup), EC2 Table-I VM types, 2 instances of each type per node.
    let topo = Arc::new(affinity_vc::topology::generate::paper_simulation());
    let catalog = Arc::new(VmCatalog::ec2_table1());
    let mut cloud = ClusterState::uniform_capacity(topo, catalog, 2);
    println!(
        "cloud: {} racks, {} nodes, availability {}",
        cloud.topology().num_racks(),
        cloud.num_nodes(),
        cloud.availability()
    );

    // 2. A user requests a virtual cluster: 2 small + 4 medium + 1 large.
    let request = Request::from_counts(vec![2, 4, 1]);
    println!("request: {request}");

    // 3. Place it three ways.
    let mut rng = StdRng::seed_from_u64(42);
    let heuristic = online::place(&request, &cloud).expect("cloud has room");
    let optimal = exact::solve(&request, &cloud).expect("cloud has room");
    let spread = Spread
        .place(&request, &cloud, &mut rng)
        .expect("cloud has room");

    for (name, alloc) in [
        ("Algorithm 1 (online heuristic)", &heuristic),
        ("exact shortest-distance", &optimal),
        ("spread baseline", &spread),
    ] {
        let d = distance_with_center(alloc.matrix(), cloud.topology(), alloc.center());
        println!(
            "{name:32} distance = {d:2}, centre = {}, spans {} nodes / {} racks",
            alloc.center(),
            alloc.span(),
            alloc.rack_span(cloud.topology()),
        );
    }

    // 4. Commit the heuristic allocation and run WordCount on it.
    cloud.allocate(&heuristic).expect("fits");
    let cluster =
        VirtualCluster::from_allocation(&heuristic, cloud.catalog(), cloud.topology_arc());
    let job = JobConfig::paper_wordcount();
    let metrics = affinity_vc::mapreduce::simulate_job(
        &cluster,
        &job,
        &affinity_vc::mapreduce::engine::SimParams::default(),
    );
    println!(
        "\nWordCount on the provisioned cluster: runtime {:.1}s, {} of {} maps data-local, {:.0}% of shuffle stayed local",
        metrics.runtime.as_secs_f64(),
        metrics.data_local_maps,
        metrics.num_maps,
        100.0 * (1.0 - metrics.non_local_shuffle_fraction()),
    );
}
