//! Reproduce the paper's §V-B experiment interactively: run WordCount on
//! virtual clusters of increasing distance and watch runtime, data
//! locality, and shuffle locality degrade (Figs. 7–8 in miniature).
//!
//! ```sh
//! cargo run --example wordcount_locality
//! ```

use affinity_vc::mapreduce::engine::SimParams;
use affinity_vc::mapreduce::{simulate_job, JobConfig, VirtualCluster, Workload};
use affinity_vc::prelude::NodeId;
use std::sync::Arc;

fn main() {
    let topo = Arc::new(affinity_vc::topology::generate::paper_simulation());

    // Four 12-VM clusters, identical capability, increasingly spread out.
    // (on-master, same-rack, cross-rack) VM counts -> distance s·1 + c·2.
    let spreads = [(2usize, 10usize, 0usize), (2, 6, 4), (2, 4, 6), (2, 0, 10)];
    let clusters: Vec<VirtualCluster> = spreads
        .iter()
        .map(|&(on_master, same_rack, cross_rack)| {
            let mut nodes = vec![NodeId(0); on_master];
            nodes.extend((0..same_rack).map(|i| NodeId(1 + (i % 9) as u32)));
            nodes.extend((0..cross_rack).map(|i| NodeId(10 + (i % 20) as u32)));
            VirtualCluster::homogeneous(&nodes, nodes.len(), Arc::clone(&topo))
        })
        .collect();

    for workload in [Workload::wordcount(), Workload::terasort()] {
        println!("\n=== {} (32 maps, 1 reducer) ===", workload.name);
        println!(
            "{:>9} {:>11} {:>16} {:>18}",
            "distance", "runtime(s)", "data-local maps", "non-local shuffle"
        );
        let job = JobConfig {
            workload: workload.clone(),
            ..JobConfig::paper_wordcount()
        };
        for cluster in &clusters {
            let m = simulate_job(cluster, &job, &SimParams::default());
            println!(
                "{:>9} {:>11.1} {:>13}/{:<2} {:>17.0}%",
                m.cluster_distance,
                m.runtime.as_secs_f64(),
                m.data_local_maps,
                m.num_maps,
                100.0 * m.non_local_shuffle_fraction(),
            );
        }
    }
    println!("\nShorter distance -> faster jobs; the effect grows with shuffle volume.");
}
