//! Cross-crate integration tests: request → placement → commitment →
//! MapReduce execution, exercising the full pipeline a user would run.

use affinity_vc::mapreduce::engine::SimParams;
use affinity_vc::placement::distance::{cluster_distance, distance_with_center};
use affinity_vc::placement::{baselines, exact, global, online, PlacementPolicy};
use affinity_vc::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn paper_cloud(per_node: u32) -> ClusterState {
    let topo = Arc::new(affinity_vc::topology::generate::paper_simulation());
    let catalog = Arc::new(VmCatalog::ec2_table1());
    ClusterState::uniform_capacity(topo, catalog, per_node)
}

#[test]
fn request_to_mapreduce_pipeline() {
    let mut cloud = paper_cloud(2);
    let request = Request::from_counts(vec![2, 4, 1]);

    let allocation = online::place(&request, &cloud).expect("cloud has room");
    assert!(allocation.satisfies(&request));
    cloud.allocate(&allocation).expect("allocation fits");

    let cluster =
        VirtualCluster::from_allocation(&allocation, cloud.catalog(), cloud.topology_arc());
    assert_eq!(cluster.len(), 7);
    assert_eq!(cluster.master(), allocation.center());

    let metrics = affinity_vc::mapreduce::simulate_job(
        &cluster,
        &JobConfig::paper_wordcount(),
        &SimParams::default(),
    );
    assert_eq!(metrics.num_maps, 32);
    assert!(metrics.runtime > SimTime::ZERO);
    assert_eq!(
        metrics.data_local_maps + metrics.rack_local_maps + metrics.remote_maps,
        32
    );

    cloud.release(&allocation).expect("release succeeds");
    assert_eq!(cloud.used().total(), 0);
}

#[test]
fn compact_placement_beats_spread_placement_end_to_end() {
    let cloud = paper_cloud(2);
    let request = Request::from_counts(vec![4, 4, 2]);
    let mut rng = StdRng::seed_from_u64(5);

    let compact = online::place(&request, &cloud).unwrap();
    let spread = baselines::Spread.place(&request, &cloud, &mut rng).unwrap();

    let d_compact = distance_with_center(compact.matrix(), cloud.topology(), compact.center());
    let d_spread = distance_with_center(spread.matrix(), cloud.topology(), spread.center());
    assert!(d_compact < d_spread, "affinity-aware must be tighter");

    // A shuffle-heavy job runs faster on the tighter cluster.
    let job = JobConfig {
        workload: Workload::terasort(),
        input_mb: 16.0 * 64.0,
        split_mb: 64.0,
        num_reducers: 2,
        replication: 3,
    };
    let run = |alloc: &Allocation| {
        let cluster = VirtualCluster::from_allocation(alloc, cloud.catalog(), cloud.topology_arc());
        affinity_vc::mapreduce::simulate_job(&cluster, &job, &SimParams::default()).runtime
    };
    let t_compact = run(&compact);
    let t_spread = run(&spread);
    assert!(
        t_compact <= t_spread,
        "compact {t_compact} should not be slower than spread {t_spread}"
    );
}

#[test]
fn all_policies_agree_on_feasibility_and_validity() {
    let cloud = paper_cloud(1);
    let mut rng = StdRng::seed_from_u64(17);
    let policies: Vec<Box<dyn PlacementPolicy>> = vec![
        Box::new(online::OnlineHeuristic),
        Box::new(exact::ExactSd),
        Box::new(baselines::FirstFit),
        Box::new(baselines::BestFit),
        Box::new(baselines::Spread),
        Box::new(baselines::RandomPlacement),
    ];
    let profile = affinity_vc::model::workload::RequestProfile::standard();
    for _ in 0..10 {
        let request = profile.sample(3, &mut rng);
        let feasible = cloud.can_satisfy(&request);
        for policy in &policies {
            match policy.place(&request, &cloud, &mut rng) {
                Ok(alloc) => {
                    assert!(feasible, "{} placed an infeasible request", policy.name());
                    assert!(
                        alloc.satisfies(&request),
                        "{} shorted the request",
                        policy.name()
                    );
                    assert!(
                        alloc.matrix().le(cloud.remaining()),
                        "{} over-committed",
                        policy.name()
                    );
                }
                Err(_) => assert!(!feasible, "{} failed a feasible request", policy.name()),
            }
        }
    }
}

#[test]
fn global_batch_improves_or_ties_online_sum() {
    let cloud = paper_cloud(1);
    let profile = affinity_vc::model::workload::RequestProfile::small();
    let mut rng = StdRng::seed_from_u64(23);
    let queue = profile.sample_many(3, 20, &mut rng);
    let placed = global::place_queue(&queue, &cloud, global::Admission::FifoBlocking).unwrap();
    assert!(placed.optimized_distance <= placed.online_distance);
    // Everything served is mutually feasible.
    let mut check = cloud.clone();
    for (_, alloc) in &placed.served {
        check.allocate(alloc).expect("combined allocations fit");
    }
}

#[test]
fn exact_solver_is_a_lower_bound_for_every_policy() {
    let cloud = paper_cloud(1);
    let mut rng = StdRng::seed_from_u64(31);
    let profile = affinity_vc::model::workload::RequestProfile::standard();
    for _ in 0..10 {
        let request = profile.sample(3, &mut rng);
        if !cloud.can_satisfy(&request) {
            continue;
        }
        let optimal = exact::solve(&request, &cloud).unwrap();
        let (d_opt, _) = cluster_distance(optimal.matrix(), cloud.topology());
        let policies: Vec<Box<dyn PlacementPolicy>> = vec![
            Box::new(online::OnlineHeuristic),
            Box::new(baselines::FirstFit),
            Box::new(baselines::BestFit),
            Box::new(baselines::Spread),
            Box::new(baselines::RandomPlacement),
        ];
        for policy in policies {
            let alloc = policy.place(&request, &cloud, &mut rng).unwrap();
            let (d, _) = cluster_distance(alloc.matrix(), cloud.topology());
            assert!(
                d >= d_opt,
                "{} produced {d} below the optimum {d_opt}",
                policy.name()
            );
        }
    }
}

#[test]
fn cloudsim_trace_conserves_resources() {
    use affinity_vc::cloudsim::sim::{run, PolicyMode, SimConfig};
    use affinity_vc::cloudsim::ArrivalProcess;

    let cloud = paper_cloud(2);
    let trace = ArrivalProcess::paper_standard().generate(25, 3, &mut StdRng::seed_from_u64(3));
    let result = run(
        &cloud,
        SimConfig::new(
            trace,
            PolicyMode::Individual(Box::new(online::OnlineHeuristic)),
            3,
        ),
    );
    assert_eq!(result.served + result.refused, 25);
    assert_eq!(
        result.refused, 0,
        "uniform capacity 2 fits every standard request"
    );
    // Waits only happen under contention; outcomes must be internally consistent.
    for o in &result.outcomes {
        let started = o.started.expect("served");
        assert!(started >= o.arrival);
        assert!(o.finished.unwrap() > started);
        assert!(o.distance.unwrap() <= 200, "distance sane");
    }
}

/// Pin the headline Fig. 7/8 reproduction: compact cluster fastest, and
/// the paper's d=14-slower-than-d=16 anomaly present with its locality
/// explanation (fewer data-local maps at d=14).
#[test]
fn fig7_shape_reproduces_with_anomaly() {
    use affinity_vc::mapreduce::VirtualCluster;

    let topo = Arc::new(affinity_vc::topology::generate::paper_simulation());
    let spreads = [(2usize, 10usize, 0usize), (2, 6, 4), (2, 4, 6), (2, 0, 10)];
    let metrics: Vec<_> = spreads
        .iter()
        .map(|&(on_master, same_rack, cross_rack)| {
            let mut nodes = vec![NodeId(0); on_master];
            nodes.extend((0..same_rack).map(|i| NodeId(1 + (i % 9) as u32)));
            nodes.extend((0..cross_rack).map(|i| NodeId(10 + (i % 20) as u32)));
            let cluster = VirtualCluster::homogeneous(&nodes, nodes.len(), Arc::clone(&topo));
            affinity_vc::mapreduce::simulate_job(
                &cluster,
                &JobConfig::paper_wordcount(),
                &SimParams::default(),
            )
        })
        .collect();

    let distances: Vec<u64> = metrics.iter().map(|m| m.cluster_distance).collect();
    assert_eq!(distances, vec![10, 14, 16, 20]);
    // Compact strictly fastest.
    for m in &metrics[1..] {
        assert!(
            metrics[0].runtime < m.runtime,
            "compact ({}) must beat d={} ({})",
            metrics[0].runtime,
            m.cluster_distance,
            m.runtime
        );
    }
    // The paper's anomaly: d=14 slower than d=16, explained by locality.
    assert!(metrics[1].runtime > metrics[2].runtime, "14-vs-16 anomaly");
    assert!(
        metrics[1].data_local_maps < metrics[2].data_local_maps,
        "anomaly must be locality-driven"
    );
    // Cross-rack shuffle grows monotonically with distance (Fig. 8).
    let cross: Vec<f64> = metrics
        .iter()
        .map(|m| m.cross_rack_shuffle_fraction())
        .collect();
    assert!(
        cross.windows(2).all(|w| w[0] <= w[1]),
        "cross-rack shuffle monotone: {cross:?}"
    );
}
