//! Property-based tests over the optimisation core: solver correctness,
//! theorem validity, and metric invariants on randomly generated clouds.

use affinity_vc::placement::distance::{cluster_distance, distance_profile, distance_with_center};
use affinity_vc::placement::{exact, global, ilp, online, theorems};
use affinity_vc::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;
use vc_model::VmTypeId;

/// A random small cloud: 2–3 racks of 2–3 nodes, 2 VM types, capacities
/// 0–3 per cell.
fn small_cloud() -> impl Strategy<Value = ClusterState> {
    (
        proptest::collection::vec(2usize..=3, 2..=3),
        proptest::collection::vec(0u32..=3, 9 * 2),
    )
        .prop_map(|(racks, caps)| {
            let topo = Arc::new(affinity_vc::topology::generate::heterogeneous(
                &racks,
                DistanceTiers::paper_experiment(),
            ));
            let catalog = Arc::new(two_type_catalog());
            let n = topo.num_nodes();
            let rows: Vec<Vec<u32>> = (0..n).map(|i| caps[i * 2..i * 2 + 2].to_vec()).collect();
            ClusterState::new(topo, catalog, ResourceMatrix::from_rows(&rows))
        })
}

fn two_type_catalog() -> VmCatalog {
    let mut types = VmCatalog::ec2_table1().types().to_vec();
    types.truncate(2);
    VmCatalog::new(types)
}

fn small_request() -> impl Strategy<Value = Request> {
    proptest::collection::vec(0u32..=3, 2).prop_map(Request::from_counts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The greedy fixed-centre solver equals brute force on tiny clouds.
    #[test]
    fn exact_matches_brute_force(state in small_cloud(), req in small_request()) {
        prop_assume!(!req.is_zero());
        let a = exact::solve(&req, &state);
        let b = exact::solve_brute(&req, &state);
        match (a, b) {
            (Ok(x), Ok(y)) => {
                let dx = distance_with_center(x.matrix(), state.topology(), x.center());
                let dy = distance_with_center(y.matrix(), state.topology(), y.center());
                prop_assert_eq!(dx, dy);
                prop_assert!(x.satisfies(&req));
                prop_assert!(x.matrix().le(state.remaining()));
            }
            (Err(_), Err(_)) => {}
            (x, y) => prop_assert!(false, "disagreement: {:?} vs {:?}", x, y),
        }
    }

    /// The §III-B integer program agrees with the combinatorial optimum.
    #[test]
    fn ilp_matches_exact(state in small_cloud(), req in small_request()) {
        prop_assume!(!req.is_zero());
        let a = exact::solve(&req, &state);
        let b = ilp::solve(&req, &state);
        match (a, b) {
            (Ok(x), Ok(y)) => {
                let dx = distance_with_center(x.matrix(), state.topology(), x.center());
                let dy = distance_with_center(y.matrix(), state.topology(), y.center());
                prop_assert_eq!(dx, dy);
                prop_assert!(y.satisfies(&req));
            }
            (Err(_), Err(_)) => {}
            (x, y) => prop_assert!(false, "disagreement: {:?} vs {:?}", x, y),
        }
    }

    /// Algorithm 1 always satisfies feasible requests, never over-commits,
    /// and never beats the optimum.
    #[test]
    fn online_sound_and_bounded(state in small_cloud(), req in small_request()) {
        prop_assume!(!req.is_zero());
        match online::place(&req, &state) {
            Ok(h) => {
                prop_assert!(h.satisfies(&req));
                prop_assert!(h.matrix().le(state.remaining()));
                let opt = exact::solve(&req, &state).expect("exact agrees on feasibility");
                let dh = distance_with_center(h.matrix(), state.topology(), h.center());
                let dopt = distance_with_center(opt.matrix(), state.topology(), opt.center());
                prop_assert!(dh >= dopt);
            }
            Err(_) => prop_assert!(!state.can_satisfy(&req)),
        }
    }

    /// `DC(C)` really is the minimum of the per-centre profile, and every
    /// profile entry upper-bounds it.
    #[test]
    fn cluster_distance_is_profile_minimum(state in small_cloud(), req in small_request()) {
        prop_assume!(state.can_satisfy(&req) && !req.is_zero());
        let alloc = online::place(&req, &state).unwrap();
        let profile = distance_profile(alloc.matrix(), state.topology());
        let (d, k) = cluster_distance(alloc.matrix(), state.topology());
        prop_assert_eq!(d, *profile.iter().min().unwrap());
        prop_assert_eq!(profile[k.index()], d);
    }

    /// Theorem 1: moving a VM changes the fixed-centre distance by exactly
    /// `D[x][to] − D[x][from]`.
    #[test]
    fn theorem1_delta_exact(
        state in small_cloud(),
        req in small_request(),
        seed in 0u64..1000,
    ) {
        prop_assume!(state.can_satisfy(&req) && !req.is_zero());
        let alloc = online::place(&req, &state).unwrap();
        let occupied = alloc.matrix().occupied_nodes();
        prop_assume!(!occupied.is_empty());
        let from = occupied[(seed as usize) % occupied.len()];
        let n = state.num_nodes();
        let to = vc_topology::NodeId(((seed / 7) % n as u64) as u32);
        let center = alloc.center();
        // find a type present on `from`
        let ty = (0..state.num_types())
            .map(VmTypeId::from_index)
            .find(|&t| alloc.matrix().get(from, t) > 0)
            .unwrap();
        let (before, after) =
            theorems::theorem1_move(alloc.matrix(), state.topology(), center, from, to, ty);
        let predicted = theorems::theorem1_predicted_delta(state.topology(), center, from, to);
        prop_assert_eq!(after as i64 - before as i64, predicted);
    }

    /// Algorithm 2's exchange pass never increases the total and preserves
    /// every request exactly.
    #[test]
    fn algorithm2_sound(state in small_cloud(), seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let profile = affinity_vc::model::workload::RequestProfile::small();
        let queue = profile.sample_many(2, 5, &mut rng);
        let placed = global::place_queue(&queue, &state, global::Admission::FifoBlocking)
            .expect("placement of admitted prefix succeeds");
        prop_assert!(placed.optimized_distance <= placed.online_distance);
        let mut check = state.clone();
        for (idx, alloc) in &placed.served {
            prop_assert!(alloc.satisfies(&queue[*idx]));
            prop_assert!(check.allocate(alloc).is_ok(), "combined over-commit");
        }
    }

    /// Theorem 2's predicted gain matches the tier algebra on any triple.
    #[test]
    fn theorem2_gain_formula(
        racks in proptest::collection::vec(2usize..=3, 2..=3),
        xi in 0usize..6,
        yi in 0usize..6,
        ki in 0usize..6,
    ) {
        let topo = affinity_vc::topology::generate::heterogeneous(
            &racks,
            DistanceTiers::paper_experiment(),
        );
        let n = topo.num_nodes();
        let (x, y, k) = (
            vc_topology::NodeId((xi % n) as u32),
            vc_topology::NodeId((yi % n) as u32),
            vc_topology::NodeId((ki % n) as u32),
        );
        let gain = theorems::theorem2_predicted_gain(&topo, x, y, k);
        let manual = i64::from(topo.distance(x, y)) + i64::from(topo.distance(y, k))
            - i64::from(topo.distance(x, k));
        prop_assert_eq!(gain, manual);
        // Metric topologies never make the exchange *harmful* beyond zero:
        prop_assert!(gain >= 0, "tier metrics satisfy the triangle inequality");
    }
}
