//! Each of the paper's quantitative claims, encoded as an executable
//! check at the paper's own scale (3 racks × 10 nodes, Table-I types).

use affinity_vc::model::workload::RequestProfile;
use affinity_vc::placement::{baselines, distance, global, online, theorems};
use affinity_vc::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn paper_cloud(seed: u64) -> ClusterState {
    let topo = Arc::new(affinity_vc::topology::generate::paper_simulation());
    let catalog = Arc::new(VmCatalog::ec2_table1());
    let mut rng = StdRng::seed_from_u64(seed);
    let capacity = affinity_vc::model::workload::random_capacity(&topo, &catalog, 3, &mut rng);
    ClusterState::new(topo, catalog, capacity)
}

/// §V-A / Fig. 2: the heuristic's centre never loses to a random centre on
/// the same cluster — across many seeds and requests.
#[test]
fn claim_fig2_heuristic_center_dominates_random() {
    let mut dominated = 0u32;
    let mut total = 0u32;
    for seed in 0..10u64 {
        let state = paper_cloud(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF1F2);
        for request in RequestProfile::standard().sample_many(3, 10, &mut rng) {
            if !state.can_satisfy(&request) {
                continue;
            }
            let alloc = online::place(&request, &state).unwrap();
            let topo = state.topology();
            let chosen = distance::distance_with_center(alloc.matrix(), topo, alloc.center());
            let random_c = baselines::random_center(&alloc, &mut rng);
            let random = distance::distance_with_center(alloc.matrix(), topo, random_c);
            assert!(chosen <= random, "heuristic centre must be minimal");
            total += 1;
            if random > chosen {
                dominated += 1;
            }
        }
    }
    assert!(total >= 50, "enough samples");
    assert!(
        dominated * 3 >= total,
        "a random centre should often be strictly worse ({dominated}/{total})"
    );
}

/// §V-A / Figs. 5–6: Algorithm 2 never increases the total distance, and
/// its *relative* benefit is larger on the small-request scenario than the
/// standard one (paper: 12 % vs 2 %), in aggregate across seeds.
///
/// Batches of 40 requests so the cloud actually saturates: with the
/// remainder-keyed phase sorts, Algorithm 1 places small requests
/// near-optimally on an idle cloud, and the exchange pass only gains its
/// small-request edge once compact slots become contested (the regime
/// Figs. 5–6 measure).
#[test]
fn claim_fig5_fig6_global_gain_larger_for_small_requests() {
    let gain = |profile: RequestProfile| -> (u64, u64) {
        let (mut online_sum, mut global_sum) = (0u64, 0u64);
        for seed in 0..48u64 {
            let state = paper_cloud(seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xAB);
            let queue = profile.sample_many(3, 40, &mut rng);
            let placed =
                global::place_queue(&queue, &state, global::Admission::FifoBlocking).unwrap();
            assert!(placed.optimized_distance <= placed.online_distance);
            online_sum += placed.online_distance;
            global_sum += placed.optimized_distance;
        }
        (online_sum, global_sum)
    };
    let (std_on, std_gl) = gain(RequestProfile::standard());
    let (sm_on, sm_gl) = gain(RequestProfile::small());
    let std_pct = (std_on - std_gl) as f64 / std_on.max(1) as f64;
    let sm_pct = (sm_on - sm_gl) as f64 / sm_on.max(1) as f64;
    assert!(
        sm_pct >= std_pct,
        "small-request gain ({sm_pct:.3}) must be at least the standard gain ({std_pct:.3})"
    );
}

/// §II admission semantics: over total capacity → refuse; over current
/// availability (but within capacity) → queue.
#[test]
fn claim_admission_refuse_vs_queue() {
    let mut state = paper_cloud(3);
    let capacity = state.capacity().column_sums();
    let over_capacity = Request::from_counts(capacity.counts().iter().map(|&c| c + 1).collect());
    assert!(matches!(
        online::place(&over_capacity, &state),
        Err(PlacementError::Refused { .. })
    ));

    // Occupy everything of type 0, then ask for one more.
    let all_v0 = Request::from_pairs(3, &[(VmTypeId(0), capacity.counts()[0])]);
    let alloc = online::place(&all_v0, &state).unwrap();
    state.allocate(&alloc).unwrap();
    let one_more = Request::from_pairs(3, &[(VmTypeId(0), 1)]);
    assert!(matches!(
        online::place(&one_more, &state),
        Err(PlacementError::Unsatisfiable { .. })
    ));
}

/// Theorem 1 at paper scale: moving any VM strictly closer to the centre
/// strictly reduces the fixed-centre distance, by exactly the distance
/// difference.
#[test]
fn claim_theorem1_at_paper_scale() {
    let state = paper_cloud(7);
    let mut rng = StdRng::seed_from_u64(99);
    let request = RequestProfile::standard().sample(3, &mut rng);
    let alloc = online::place(&request, &state).unwrap();
    let topo = state.topology();
    let center = alloc.center();
    for from in alloc.matrix().occupied_nodes() {
        for to in topo.node_ids() {
            let ty = (0..3)
                .map(VmTypeId::from_index)
                .find(|&t| alloc.matrix().get(from, t) > 0)
                .unwrap();
            let (before, after) =
                theorems::theorem1_move(alloc.matrix(), topo, center, from, to, ty);
            let predicted = theorems::theorem1_predicted_delta(topo, center, from, to);
            assert_eq!(after as i64 - before as i64, predicted);
            if topo.distance(center, to) < topo.distance(center, from) {
                assert!(
                    after < before,
                    "Theorem 1: nearer node must reduce distance"
                );
            }
        }
    }
}

/// §IV-A complexity claim sanity: Algorithm 1 stays fast as the cloud
/// grows (not a timing benchmark — an upper bound against quadratic
/// blow-up in observable work via the resulting allocation validity).
#[test]
fn claim_algorithm1_scales_to_larger_clouds() {
    for (racks, nodes) in [(3usize, 10usize), (6, 20), (10, 30)] {
        let topo = Arc::new(affinity_vc::topology::generate::uniform(
            racks,
            nodes,
            DistanceTiers::paper_experiment(),
        ));
        let catalog = Arc::new(VmCatalog::ec2_table1());
        let state = ClusterState::uniform_capacity(topo, catalog, 2);
        let request = Request::from_counts(vec![8, 8, 4]);
        let start = std::time::Instant::now();
        let alloc = online::place(&request, &state).unwrap();
        assert!(alloc.satisfies(&request));
        assert!(
            start.elapsed().as_millis() < 2_000,
            "{racks}x{nodes} took {:?}",
            start.elapsed()
        );
    }
}
